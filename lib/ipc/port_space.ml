module Mailbox = Mach_sim.Mailbox
module Waitq = Mach_sim.Waitq

type name = int
type notification = Port_deleted of name

type status = { st_queued : int; st_backlog : int; st_has_receive : bool; st_enabled : bool }

type entry = {
  port : Message.port;
  mutable send : bool;
  mutable receive : bool;
  mutable is_enabled : bool;
  mutable dead : bool;
  mutable in_ready : bool;  (** name is on the ready FIFO *)
  mutable death_hook : int option;
  mutable arrival_hook : int option;
}

type t = {
  ctx : Context.t;
  mutable host : int;
  names : (name, entry) Hashtbl.t;
  by_port : (int, name) Hashtbl.t; (* port id -> name *)
  mutable next_name : name;
  activity : Waitq.t;
  ready : name Queue.t;
      (* enabled ports with (possibly) queued messages, in arrival
         order: receive-any pops the head instead of scanning every
         enabled port. Entries can go stale (message consumed by a
         direct receive, port disabled or dead); [pop_ready] validates
         and discards lazily. *)
  notifications : notification Mailbox.t;
}

let create ctx ~home =
  {
    ctx;
    host = home;
    names = Hashtbl.create 64;
    by_port = Hashtbl.create 64;
    next_name = 1;
    activity = Waitq.create ();
    ready = Queue.create ();
    notifications = Mailbox.create ();
  }

let context t = t.ctx
let home t = t.host
let set_home t host = t.host <- host
let activity t = t.activity

let fresh_name t =
  let n = t.next_name in
  t.next_name <- n + 1;
  n

let watch_death t name entry =
  let hook =
    Port.on_death entry.port (fun () ->
        if not entry.dead then begin
          entry.dead <- true;
          Mailbox.send t.notifications (Port_deleted name)
        end)
  in
  entry.death_hook <- Some hook

let register t port ~send ~receive =
  let name = fresh_name t in
  let entry =
    { port; send; receive; is_enabled = false; dead = not (Port.alive port); in_ready = false;
      death_hook = None; arrival_hook = None }
  in
  Hashtbl.replace t.names name entry;
  Hashtbl.replace t.by_port (Port.id port) name;
  if not entry.dead then watch_death t name entry
  else Mailbox.send t.notifications (Port_deleted name);
  name

let allocate t ?backlog () =
  let port = Port.create t.ctx ~home:t.host ?backlog () in
  register t port ~send:true ~receive:true

let insert t port right =
  (match right with Message.Receive_right -> Port.set_home port t.host | Message.Send_right -> ());
  match Hashtbl.find_opt t.by_port (Port.id port) with
  | Some name ->
    let entry = Hashtbl.find t.names name in
    (match right with
    | Message.Send_right -> entry.send <- true
    | Message.Receive_right -> entry.receive <- true);
    name
  | None -> (
    match right with
    | Message.Send_right -> register t port ~send:true ~receive:false
    | Message.Receive_right -> register t port ~send:false ~receive:true)

let find t name = Hashtbl.find_opt t.names name

let detach_hooks entry =
  (match entry.death_hook with
  | Some h ->
    Port.cancel_on_death entry.port h;
    entry.death_hook <- None
  | None -> ());
  match entry.arrival_hook with
  | Some h ->
    Port.cancel_on_arrival entry.port h;
    entry.arrival_hook <- None
  | None -> ()

let deallocate t name =
  match find t name with
  | None -> invalid_arg "Port_space.deallocate: unknown name"
  | Some entry ->
    detach_hooks entry;
    Hashtbl.remove t.names name;
    Hashtbl.remove t.by_port (Port.id entry.port);
    (* Dropping the receive right destroys the port and notifies
       senders (their own death hooks fire). *)
    if entry.receive && not entry.dead then Port.destroy entry.port

let lookup t name =
  match find t name with
  | Some entry when not entry.dead -> Some entry.port
  | Some _ | None -> None

let lookup_exn t name =
  match lookup t name with
  | Some p -> p
  | None -> invalid_arg "Port_space.lookup_exn: unknown or dead name"

let port_of_name t name = match find t name with Some e -> Some e.port | None -> None
let name_of t port = Hashtbl.find_opt t.by_port (Port.id port)
let has_receive t name = match find t name with Some e -> e.receive && not e.dead | None -> false
let has_send t name = match find t name with Some e -> e.send && not e.dead | None -> false

let mark_ready t name entry =
  if not entry.in_ready then begin
    entry.in_ready <- true;
    Queue.push name t.ready
  end

let enable t name =
  match find t name with
  | None -> invalid_arg "Port_space.enable: unknown name"
  | Some entry ->
    if not entry.receive then invalid_arg "Port_space.enable: no receive right";
    if not entry.is_enabled && not entry.dead then begin
      entry.is_enabled <- true;
      (* Each arrival pushes the port onto the ready FIFO (once) and
         wakes exactly one receive-any waiter: the message can be
         consumed by one receiver only, so waking all of them just makes
         the rest spin (the old thundering herd). *)
      let hook =
        Port.on_arrival entry.port (fun () ->
            mark_ready t name entry;
            Waitq.signal t.activity)
      in
      entry.arrival_hook <- Some hook;
      (* Messages may have queued before the port joined the group. *)
      if Port.queued entry.port > 0 then begin
        mark_ready t name entry;
        Waitq.signal t.activity
      end
    end

let disable t name =
  match find t name with
  | None -> invalid_arg "Port_space.disable: unknown name"
  | Some entry ->
    entry.is_enabled <- false;
    (match entry.arrival_hook with
    | Some h ->
      Port.cancel_on_arrival entry.port h;
      entry.arrival_hook <- None
    | None -> ())

let pop_ready t =
  let rec go () =
    match Queue.take_opt t.ready with
    | None -> None
    | Some name -> (
      match find t name with
      | None -> go () (* deallocated since queued; its flag died with it *)
      | Some entry ->
        entry.in_ready <- false;
        if entry.is_enabled && not entry.dead && Port.queued entry.port > 0 then
          Some (name, entry.port)
        else go () (* stale: consumed elsewhere, disabled, or dead *))
  in
  go ()

let requeue_ready t name =
  match find t name with
  | Some entry when entry.is_enabled && not entry.dead && Port.queued entry.port > 0 ->
    mark_ready t name entry
  | Some _ | None -> ()

let enabled t =
  Hashtbl.fold (fun name e acc -> if e.is_enabled && not e.dead then name :: acc else acc) t.names []
  |> List.sort compare

let enabled_ports t =
  Hashtbl.fold
    (fun name e acc -> if e.is_enabled && not e.dead then (name, e.port) :: acc else acc)
    t.names []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let messages_waiting t =
  enabled_ports t |> List.filter (fun (_, p) -> Port.queued p > 0) |> List.map fst

let status t name =
  match find t name with
  | None -> None
  | Some e ->
    Some
      {
        st_queued = (if e.dead then 0 else Port.queued e.port);
        st_backlog = (if e.dead then 0 else Port.backlog e.port);
        st_has_receive = e.receive;
        st_enabled = e.is_enabled;
      }

let set_backlog t name n =
  match find t name with
  | None -> invalid_arg "Port_space.set_backlog: unknown name"
  | Some e ->
    if not e.receive then invalid_arg "Port_space.set_backlog: no receive right";
    if not e.dead then Port.set_backlog e.port n

let next_notification t ?timeout () =
  match timeout with
  | None -> Some (Mailbox.recv t.notifications)
  | Some timeout -> Mailbox.recv_timeout t.notifications ~timeout
let pending_notifications t = Mailbox.length t.notifications

let destroy t =
  let all = Hashtbl.fold (fun name _ acc -> name :: acc) t.names [] |> List.sort compare in
  List.iter (fun name -> deallocate t name) all
