(** The primitive message operations of Table 3-1: [msg_send],
    [msg_receive], [msg_rpc].

    Cost model (charged in simulated time to the calling thread):
    - a fixed per-message software overhead ([msg_overhead_us]);
    - inline and [Copy_transfer] out-of-line bytes cost a physical copy
      (derived from the machine's page-copy rate);
    - [Map_transfer] out-of-line payloads carried in the message cost
      one map operation per page — the duality's win for large
      messages; [Ool_copy] handles cost nothing here (copyin charged
      its map ops already, copyout/fault pay theirs lazily);
    - cross-host destinations add network transit (latency + wire
      bytes / BW — copy-object pages do not transit); the sender does
      not wait for remote queueing. *)

(** Per-host IPC counters (hung off the node shared by a host's kernel
    context and tasks). *)
type ipc_stats = {
  mutable s_msgs_sent : int;
  mutable s_bytes_copied : int;  (** inline + [Copy_transfer] bytes physically copied at send *)
  mutable s_bytes_mapped : int;  (** bytes moved by mapping (incl. copy objects) *)
  mutable s_copyins : int;  (** [vm_map_copyin] snapshots taken *)
  mutable s_lazy_copyout_faults : int;  (** faults materializing lazily copied-out pages *)
  mutable s_rpc_fastpath : int;  (** sends that handed off directly to a blocked receiver *)
  mutable s_handoffs : int;
      (** receives completed via handoff: the blocked receiver was woken
          by a fast-path send and skipped its context-switch charge *)
  mutable s_spurious_wakeups : int;  (** receive-any wakeups that found no ready port *)
}

val fresh_ipc_stats : unit -> ipc_stats
val ipc_stats_to_list : ipc_stats -> (string * int) list

val reset_ipc_stats : ipc_stats -> unit
(** Zero every counter (the registry's shared reset idiom). *)

type node = {
  node_host : int;  (** host id of the calling task *)
  node_params : Mach_hw.Machine.params;
  node_page_size : int;
  node_stats : ipc_stats;
  mutable node_sched : Mach_sim.Sched.t option;
      (** the host's processor scheduler: send/receive CPU costs contend
          for processors through it, and local fast-path sends donate
          the sender's processor to the receiver (handoff scheduling).
          [None] (bare test nodes) falls back to un-contended sleeps. *)
  mutable node_handoff_enabled : bool;
      (** when [false], local fast-path sends neither donate a processor
          nor mark the message, so every receive pays the full
          context-switch charge — the ablation arm for measuring what
          handoff scheduling saves. Defaults to [true]. *)
  mutable node_trace : Mach_sim.Trace.t option;
      (** when set and enabled, {!send} stamps the sender's current
          span id into the header (unless already stamped) and emits
          "ipc" [send]/[send_remote] points; receives emit
          [recv]/[recv_handoff] points attributed to the carried
          span. [None] (bare test nodes) traces nothing. *)
}

type send_error =
  | Send_invalid_port  (** destination is dead *)
  | Send_timed_out  (** queue stayed full past the timeout *)

type recv_error =
  | Recv_timed_out
  | Recv_invalid_port  (** no receive right / port dead with empty queue *)

val fastpath_inline_bytes : int
(** Largest fully-inline message eligible for the direct-handoff fast
    path (delivered straight to a blocked receiver, skipping the
    arrival notification). *)

val send :
  node -> ?timeout:float -> Message.t -> (unit, send_error) result
(** Blocks while the destination queue is full (unless [timeout],
    in microseconds, is given; [timeout] = 0 is a non-blocking try).
    Remote destinations enqueue through the destination host's single
    delivery daemon (one thread per host, not per message). *)

val receive :
  node ->
  Port_space.t ->
  from:[ `Port of Port_space.name | `Any ] ->
  ?timeout:float ->
  unit ->
  (Message.t, recv_error) result
(** [`Any] receives from the space's enabled default group (§3.2,
    [port_enable]) in message-arrival order via the ready-port FIFO —
    O(1) per receive, no scan of the enabled set. Port capabilities
    carried in the message are inserted into the receiving space. *)

val rpc :
  node ->
  Port_space.t ->
  Message.t ->
  ?send_timeout:float ->
  ?recv_timeout:float ->
  unit ->
  (Message.t, [ `Send of send_error | `Recv of recv_error ]) result
(** [msg_rpc]: send, then receive on the message's reply port (which
    must be present and held with receive rights in [space]). *)

val send_cost_us : node -> Message.t -> float
(** The simulated CPU cost {!send} would charge (excluding queueing and
    network time) — exposed for the E3 bench. *)
