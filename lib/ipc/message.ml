(* The payload of a kernel copy object is owned by whichever layer made
   the snapshot (the VM layer's vm_map_copyin, or the network transport
   exporting a memory object); extensibility keeps this module free of a
   dependency on the VM structures. *)
type copy_payload = ..

type t = { header : header; body : item list }

and header = {
  dest : port;
  reply : port option;
  msg_id : int;
  mutable handoff : int option;  (* transport-set: delivered to a blocked receiver *)
  mutable trace_span : int;  (* transport-set: sender's causal span id, -1 if none *)
}

and item =
  | Data of bytes
  | Caps of cap list
  | Ool of ool
  | Ool_region of ool_region
  | Ool_copy of copy_object

and ool_region = { src_task : int; src_addr : int; region_size : int }
and copy_object = { cp_size : int; cp_payload : copy_payload }
and cap = { cap_port : port; cap_right : right }
and right = Send_right | Receive_right
and ool = { ool_data : bytes; transfer : transfer_mode }
and transfer_mode = Copy_transfer | Map_transfer
and port = t Port.t

type copy_payload += Net_copy of { nc_object : port }

(* Wire size of a copy-object handle: a port name and a length. *)
let copy_handle_bytes = 16

let make ?reply ?(msg_id = 0) ~dest body =
  { header = { dest; reply; msg_id; handoff = None; trace_span = -1 }; body }

let inline_bytes t =
  List.fold_left
    (fun acc item ->
      match item with
      | Data b -> acc + Bytes.length b
      | Ool { ool_data; transfer = Copy_transfer } -> acc + Bytes.length ool_data
      | Ool { transfer = Map_transfer; _ } | Caps _ | Ool_region _ | Ool_copy _ -> acc)
    0 t.body

let mapped_bytes t =
  List.fold_left
    (fun acc item ->
      match item with
      | Ool { ool_data; transfer = Map_transfer } -> acc + Bytes.length ool_data
      | Ool_region r -> acc + r.region_size
      | Ool_copy c -> acc + c.cp_size
      | Ool { transfer = Copy_transfer; _ } | Data _ | Caps _ -> acc)
    0 t.body

let carried_mapped_bytes t =
  List.fold_left
    (fun acc item ->
      match item with
      | Ool { ool_data; transfer = Map_transfer } -> acc + Bytes.length ool_data
      | Ool_region r -> acc + r.region_size
      | Ool_copy _ | Ool { transfer = Copy_transfer; _ } | Data _ | Caps _ -> acc)
    0 t.body

let wire_bytes t =
  List.fold_left
    (fun acc item ->
      match item with
      | Data b -> acc + Bytes.length b
      | Ool { ool_data; _ } -> acc + Bytes.length ool_data
      | Ool_region _ -> acc + copy_handle_bytes
      | Ool_copy _ -> acc + copy_handle_bytes
      | Caps _ -> acc)
    0 t.body

let total_bytes t = inline_bytes t + mapped_bytes t

let data_exn t =
  let rec find = function
    | Data b :: _ -> b
    | _ :: rest -> find rest
    | [] -> raise Not_found
  in
  find t.body

let caps t =
  List.concat_map
    (function Caps cs -> cs | Data _ | Ool _ | Ool_region _ | Ool_copy _ -> [])
    t.body

let ool_payloads t =
  List.filter_map
    (function Ool o -> Some o.ool_data | Data _ | Caps _ | Ool_region _ | Ool_copy _ -> None)
    t.body

let ool_regions t =
  List.filter_map
    (function Ool_region r -> Some r | Data _ | Caps _ | Ool _ | Ool_copy _ -> None)
    t.body

let ool_copies t =
  List.filter_map
    (function Ool_copy c -> Some c | Data _ | Caps _ | Ool _ | Ool_region _ -> None)
    t.body

let pp fmt t =
  Format.fprintf fmt "msg{id=%d dest=%a inline=%dB mapped=%dB caps=%d}" t.header.msg_id Port.pp
    t.header.dest (inline_bytes t) (mapped_bytes t)
    (List.length (caps t))
