(** Per-task port name spaces and the Table 3-2 operations.

    Tasks refer to ports by small-integer local names; rights
    (send/receive) are tracked per name. A space also owns the task's
    "default group of ports" for [msg_receive] ([port_enable] /
    [port_disable]) and the queue of port-death notifications. *)

type t
type name = int

type notification =
  | Port_deleted of name
      (** the port named [name] died while this space held rights on it *)

type status = {
  st_queued : int;  (** messages waiting *)
  st_backlog : int;
  st_has_receive : bool;
  st_enabled : bool;
}

val create : Context.t -> home:int -> t
val context : t -> Context.t
val home : t -> int
val set_home : t -> int -> unit

(** {2 Allocation and rights} *)

val allocate : t -> ?backlog:int -> unit -> name
(** [port_allocate]: new port; the space holds both receive and send
    rights. *)

val insert : t -> Message.port -> Message.right -> name
(** Record a right obtained from a message or another kernel interface.
    Rights to the same port coalesce onto one name. Inserting a receive
    right moves the port's home to this space's host. *)

val deallocate : t -> name -> unit
(** [port_deallocate]: drop this space's rights. Dropping the receive
    right destroys the port (senders everywhere are notified). Unknown
    names raise [Invalid_argument]. *)

val lookup : t -> name -> Message.port option
(** [None] if the name is unknown or the right was deallocated. *)

val lookup_exn : t -> name -> Message.port

val port_of_name : t -> name -> Message.port option
(** Like {!lookup} but also returns dead ports (needed to identify
    which port a death notification was about). *)

val name_of : t -> Message.port -> name option
val has_receive : t -> name -> bool
val has_send : t -> name -> bool

(** {2 Default receive group} *)

val enable : t -> name -> unit
(** [port_enable]: requires the receive right. *)

val disable : t -> name -> unit
val enabled : t -> name list
(** Sorted by name. *)

val messages_waiting : t -> name list
(** [port_messages]: enabled ports with queued messages, sorted. *)

val status : t -> name -> status option
(** [port_status]. *)

val set_backlog : t -> name -> int -> unit
(** [port_set_backlog]: requires the receive right. *)

(** {2 Notifications} *)

val next_notification : t -> ?timeout:float -> unit -> notification option
(** Block for the next port-death notification (forever when no timeout
    is given — only returns [None] on timeout). *)

val pending_notifications : t -> int

(** {2 Receive-any support (transport use)} *)

val activity : t -> Mach_sim.Waitq.t
(** Signalled (one waiter, not broadcast) whenever a message arrives on
    an enabled port. *)

val pop_ready : t -> (name * Message.port) option
(** Pop the oldest enabled port with queued messages off the ready FIFO
    maintained by the arrival hooks — O(1) amortized, no scan of the
    enabled set. Stale entries (message already consumed, port disabled
    or dead) are validated and discarded here. [None] means no enabled
    port has messages. *)

val requeue_ready : t -> name -> unit
(** Put [name] back on the ready FIFO if it still has queued messages
    (call after consuming one message of several). *)

val enabled_ports : t -> (name * Message.port) list

val destroy : t -> unit
(** Tear down the space: deallocates every name (destroying ports whose
    receive right lives here) — task termination. *)
