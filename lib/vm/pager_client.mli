(** The kernel's side of the external memory management interface.

    Sends the Table 3-5 calls ([pager_init], [pager_data_request],
    [pager_data_write], [pager_data_unlock], [pager_create]) and handles
    the Table 3-6 calls arriving on pager request ports
    ([pager_data_provided], [pager_data_lock], [pager_flush_request],
    [pager_clean_request], [pager_cache], [pager_data_unavailable]).

    All calls are asynchronous, exactly as the paper specifies: "the
    calls do not have explicit return arguments and the kernel does not
    wait for acknowledgement". *)

open Vm_types

val install : Kctx.t -> unit
(** Install the port-aware object terminator into the context. Call once
    at kernel boot. *)

val ensure_initialized : Kctx.t -> obj -> unit
(** If the object has an external pager that has not been initialised,
    allocate the pager request and name ports, register them, and send
    [pager_init] (§3.4.1: performed before [vm_allocate_with_pager]
    completes, without awaiting a reply). *)

val request_page : Kctx.t -> obj -> offset:int -> desired_access:Mach_hw.Prot.t -> page
(** Allocate a busy+absent placeholder page and send
    [pager_data_request] for one page. The caller waits on the page. *)

val request_cluster :
  Kctx.t -> obj -> offset:int -> desired_access:Mach_hw.Prot.t -> window:int -> page
(** Like {!request_page} for the page at [offset], but widen the request
    over up to [window - 1] forward-adjacent non-resident pages (stopping
    at the object end, at a resident page, or when a frame is not free
    without waiting). The extra placeholders are speculative
    ([cluster_spec]): no faulter waits on them, and a timer reclaims any
    the manager never fills. Returns the demanded page — which may be a
    page another faulter installed while we slept for a frame. *)

val rerequest : Kctx.t -> page -> desired_access:Mach_hw.Prot.t -> unit
(** Re-send a single-page [pager_data_request] for an existing
    busy+absent placeholder — used when a fault lands on a speculative
    cluster page whose data may never come (partial provide). *)

val bind_to_default_pager : Kctx.t -> obj -> unit
(** First pageout from an anonymous object: create a kernel memory
    object, hand it to the default pager with [pager_create], and bind
    it as the object's pager. Requires [default_pager_port] to be set. *)

val write_run : Kctx.t -> page list -> dispose:dispose -> unit
(** Launder a run of adjacent dirty pages: one [pager_data_write] for
    the whole run. The pages stay resident on the laundry queue, busy,
    until the manager releases the data ([Release_write]) — a refault
    during the clean waits on the busy machinery instead of
    round-tripping to the pager. On release, [Dispose_keep] pages become
    clean-resident (freed only while memory pressure persists);
    [Dispose_free] pages leave the cache. If the manager sits on the
    data past the release timeout, the run is rescued to the default
    pager (§6.2.2) and the cleaning pages are freed. [pages] must be
    non-empty, same-object, offset-sorted, offset-adjacent, non-busy,
    and the object must already have a pager binding. *)

val page_out : Kctx.t -> page -> flush:bool -> unit
(** Single-page {!write_run}: [flush] selects [Dispose_free] and counts
    a flush. *)

val send_unlock : Kctx.t -> obj -> offset:int -> length:int -> desired_access:Mach_hw.Prot.t -> unit
(** [pager_data_unlock]: ask the manager to loosen a page lock. *)

val handle_manager_message : Kctx.t -> Mach_ipc.Message.t -> unit
(** Dispatch one manager→kernel message (the kernel's pager service
    thread calls this for traffic on pager request ports). Unknown or
    malformed messages are counted and dropped. *)

val object_of_request_port : Kctx.t -> Mach_ipc.Message.port -> obj option

val terminate : Kctx.t -> obj -> unit
(** Release everything: resident pages, kernel port rights (destroying
    the request and name ports — the manager observes their death and
    shuts down, §3.4.1), registry entries. *)
