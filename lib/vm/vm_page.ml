open Vm_types
module Waitq = Mach_sim.Waitq
module Pmap = Mach_hw.Pmap
module Phys_mem = Mach_hw.Phys_mem
module Prot = Mach_hw.Prot
module Machine = Mach_hw.Machine

let insert kctx obj ~offset ~frame ~busy ~absent =
  if offset land (kctx.Kctx.page_size - 1) <> 0 then
    invalid_arg "Vm_page.insert: offset not page-aligned";
  if Hashtbl.mem obj.obj_pages offset then invalid_arg "Vm_page.insert: offset already cached";
  let page =
    {
      frame;
      p_obj = obj;
      p_offset = offset;
      wire_count = 0;
      busy;
      absent;
      p_error = false;
      busy_wait = Waitq.create ();
      page_lock = Prot.none;
      unlock_requested = false;
      dirty = false;
      q_state = Q_none;
      q_node = None;
      mappings = [];
      grant_hold = 0;
      cluster_spec = false;
    }
  in
  Hashtbl.replace obj.obj_pages offset page;
  page

let lookup obj ~offset = Hashtbl.find_opt obj.obj_pages offset

let wait_unbusy page =
  while page.busy do
    Waitq.wait page.busy_wait
  done

let set_unbusy page =
  page.busy <- false;
  Waitq.broadcast page.busy_wait

let add_mapping page pmap ~vpn =
  if not (List.exists (fun (pm, v) -> pm == pmap && v = vpn) page.mappings) then
    page.mappings <- (pmap, vpn) :: page.mappings

let drop_mapping page pmap ~vpn =
  page.mappings <- List.filter (fun (pm, v) -> not (pm == pmap && v = vpn)) page.mappings

let harvest_bits kctx page =
  let mem = kctx.Kctx.mem in
  if Phys_mem.modified mem page.frame then begin
    page.dirty <- true;
    Phys_mem.set_modified mem page.frame false
  end

let remove_all_mappings ?(charge = true) kctx page =
  harvest_bits kctx page;
  let n = List.length page.mappings in
  List.iter (fun (pmap, vpn) -> Pmap.remove pmap ~vpn) page.mappings;
  page.mappings <- [];
  if charge && n > 0 then Kctx.charge kctx (float_of_int n *. kctx.Kctx.params.Machine.map_op_us)

let protect_mappings kctx page prot =
  let n = List.length page.mappings in
  List.iter (fun (pmap, vpn) -> Pmap.protect pmap ~vpn ~prot) page.mappings;
  if n > 0 then Kctx.charge kctx (float_of_int n *. kctx.Kctx.params.Machine.map_op_us)

(* Structural detachment happens before the (potentially blocking) map
   charges, so a fault running while we sleep never sees a half-freed
   page in the tables. *)
let free kctx page =
  assert (not page.busy);
  Page_queues.remove kctx.Kctx.queues page;
  Hashtbl.remove page.p_obj.obj_pages page.p_offset;
  (* Anyone waiting on this page (e.g. for a manager unlock) must wake
     and re-run its fault against the new world. *)
  Waitq.broadcast page.busy_wait;
  let mappings = page.mappings in
  page.mappings <- [];
  harvest_bits kctx page;
  List.iter (fun (pmap, vpn) -> Pmap.remove pmap ~vpn) mappings;
  Kctx.free_frame kctx page.frame;
  kctx.Kctx.stats.s_pages_freed <- kctx.Kctx.stats.s_pages_freed + 1;
  let n = List.length mappings in
  if n > 0 then Kctx.charge kctx (float_of_int n *. kctx.Kctx.params.Machine.map_op_us)

(* Reclaim a speculative cluster-in placeholder the manager never
   filled. Spec pages are busy+absent with no waiters (a fault landing
   on one clears the flag), so dropping them is always safe. *)
let release_placeholder kctx page =
  if page.cluster_spec && page.busy && page.absent
     && Hashtbl.mem page.p_obj.obj_pages page.p_offset
  then begin
    page.cluster_spec <- false;
    page.p_obj.paging_in_progress <- max 0 (page.p_obj.paging_in_progress - 1);
    set_unbusy page;
    free kctx page
  end

let rename ?(charge = true) kctx page obj ~offset =
  if Hashtbl.mem obj.obj_pages offset then invalid_arg "Vm_page.rename: target offset occupied";
  Hashtbl.remove page.p_obj.obj_pages page.p_offset;
  page.p_obj <- obj;
  page.p_offset <- offset;
  Hashtbl.replace obj.obj_pages offset page;
  remove_all_mappings ~charge kctx page
