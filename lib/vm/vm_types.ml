(** Core virtual-memory data structures (§5 of the paper).

    Memory objects and resident pages reference each other, so both
    records live here; the operation modules ({!Vm_object}, {!Vm_page},
    {!Vm_map}, {!Fault}, …) work over these types.

    Divergence note: the paper keeps a single global virtual-to-physical
    hash table chained through resident page structures plus a per-object
    page list. We keep one hash table per object, which serves both
    roles — lookup by (object, offset) and expedient teardown — with the
    same asymptotics. *)

module Waitq = Mach_sim.Waitq
module Ivar = Mach_sim.Ivar

type port = Mach_ipc.Message.port

(** Inheritance attribute of an address range (§3.3, [vm_inherit]). *)
type inheritance = Inherit_share | Inherit_copy | Inherit_none

let inheritance_to_string = function
  | Inherit_share -> "share"
  | Inherit_copy -> "copy"
  | Inherit_none -> "none"

(** Which queue a resident page is on (§5.4). [Q_laundry] is the
    cleaning state of the dirty-page lifecycle: the page is resident and
    busy while a [pager_data_write] naming it is outstanding; a refault
    waits on the busy machinery instead of re-requesting from the pager.

    {v
      active/inactive --launder--> laundry (busy-cleaning)
           ^                          |
           |            release_write |         rescue timeout
           +--(clean-resident, no  <--+--> freed (continued pressure,
               pressure: deactivate)        flush, or double-paging)
    v} *)
type queue_state = Q_none | Q_active | Q_inactive | Q_laundry

type obj = {
  obj_id : int;
  mutable obj_size : int;  (** bytes *)
  mutable pager : pager_binding;
  obj_pages : (int, page) Hashtbl.t;  (** page-aligned offset → resident page *)
  mutable ref_count : int;  (** address-map references *)
  mutable can_persist : bool;  (** data manager called pager_cache(true) *)
  mutable backing : backing option;  (** shadow chain: where to look next *)
  mutable temporary : bool;
      (** contents need not outlive the object (shadow / anonymous) *)
  mutable obj_alive : bool;
  mutable paging_in_progress : int;  (** in-flight pager operations *)
  mutable shadowers : obj list;
      (** live objects whose [backing] points here — the copy engine
          walks this from the deallocate path to collapse chains that
          a write fault would never revisit *)
}

and backing = { back_obj : obj; back_offset : int }

and pager_binding =
  | No_pager  (** anonymous memory, never paged out: zero-fill *)
  | Pager of extpager

and extpager = {
  memory_object : port;  (** manager holds receive rights *)
  mutable request_port : port option;  (** kernel holds receive rights *)
  mutable name_port : port option;
  mutable initialized : bool;
  init_wait : unit Ivar.t;
  is_default : bool;  (** trusted default pager (§6.2.2) *)
  mutable pager_dead : bool;
      (** the manager's object port died; outstanding and future
          requests resolve locally (zero-fill or fault error) *)
}

and page = {
  mutable frame : int;  (** physical frame holding the data *)
  mutable p_obj : obj;
  mutable p_offset : int;  (** page-aligned offset within p_obj *)
  mutable wire_count : int;
  mutable busy : bool;  (** in transit (pagein/pageout); waiters queue *)
  mutable absent : bool;  (** placeholder: data requested, not yet arrived *)
  mutable p_error : bool;  (** the data request failed *)
  busy_wait : Waitq.t;
  mutable page_lock : Mach_hw.Prot.t;  (** accesses forbidden by the manager *)
  mutable unlock_requested : bool;  (** pager_data_unlock already sent *)
  mutable dirty : bool;
  mutable q_state : queue_state;
  mutable q_node : page Mach_util.Dlist.node option;
  mutable mappings : (Mach_hw.Pmap.t * int) list;  (** (pmap, vpn) validations *)
  mutable grant_hold : int;
      (** faulters that just validated a translation and have not yet
          retried the access. A manager flush waits for the holds to
          drain, so a freshly granted page is used at least once before
          it is surrendered — otherwise two kernels write-sharing a hot
          page can revoke each other's grants forever (the Li & Hudak
          ping-pong livelock). *)
  mutable cluster_spec : bool;
      (** speculative cluster-in placeholder: requested as a neighbor of
          a hard fault, no faulter has asked for it yet. A fault that
          lands on such a page re-requests it individually (the manager
          may have answered the cluster only partially), and stale
          placeholders are reclaimed rather than waited on. *)
}

(** What to do with a laundered page once the manager releases the
    data: keep it resident and clean (absorbing refaults), or free it
    (flush semantics — the page must leave the cache). [`Keep] still
    frees the frame when memory pressure persists at release time. *)
type dispose = Dispose_keep | Dispose_free

(** A run of adjacent dirty pages shipped to a data manager by one
    [pager_data_write]. The pages stay resident and busy-cleaning
    (laundry queue) until the manager releases the data — or until the
    kernel rescues itself by paging the run out to the default pager
    (§6.2.2 double paging). Pages detached before the release arrives
    (object termination) park their frames in [h_frames] instead. *)
type holding = {
  h_write_id : int;
  h_obj : obj;
  h_offset : int;  (** run start *)
  h_data : bytes;  (** run contents as shipped, for the §6.2.2 rescue *)
  mutable h_pages : page list;  (** resident cleaning pages, offset order *)
  mutable h_frames : int list;  (** parked frames of detached pages *)
  h_dispose : dispose;
  mutable h_released : bool;
}

(** Kernel VM statistics, in the spirit of [vm_statistics] (Table 3-3). *)
type stats = {
  mutable s_faults : int;
  mutable s_zero_fill : int;
  mutable s_cow_faults : int;
  mutable s_pageins : int;
  mutable s_pageouts : int;
  mutable s_hits : int;  (** faults satisfied by a resident page *)
  mutable s_reactivations : int;
  mutable s_unlock_requests : int;
  mutable s_flushes : int;
  mutable s_objects_created : int;
  mutable s_pages_freed : int;
  mutable s_data_requests : int;
  mutable s_data_provided : int;
  mutable s_data_unavailable : int;
  mutable s_pageout_to_default : int;  (** §6.2.2 double-paging rescues *)
  mutable s_collapses : int;  (** shadow chains merged away *)
  mutable s_fast_faults : int;  (** resolved entirely on the fault fast path *)
  mutable s_hint_hits : int;  (** map lookups answered by the per-map hint *)
  mutable s_hint_misses : int;  (** map lookups that fell back to binary search *)
  mutable s_burst_entered : int;  (** neighbor translations pre-entered after a fault *)
  mutable s_cluster_pages : int;  (** extra pages asked for by clustered data requests *)
  mutable s_slow_busy : int;  (** slow-path entries: waited on a busy page *)
  mutable s_slow_lock : int;  (** slow-path entries: waited on a manager unlock *)
  mutable s_slow_pager : int;  (** slow-path entries: issued a pager request *)
  mutable s_data_writes : int;  (** pager_data_write messages (one per run) *)
  mutable s_laundered : int;  (** pages written back while kept resident *)
  mutable s_clean_hits : int;  (** refaults absorbed by a cleaning/clean-resident page *)
  mutable s_pager_deaths : int;  (** manager object ports that died *)
  mutable s_death_zero_fills : int;
      (** placeholder pages zero-filled when their pager died *)
  mutable s_death_errors : int;
      (** placeholder pages failed with an error when their pager died *)
  mutable s_cow_steals : int;
      (** COW resolutions that renamed the page up the chain instead of
          copying it (sole user: no copy, no 400 µs charge) *)
  mutable s_cow_batched : int;
      (** extra pending-copy pages resolved by a neighbor's COW fault *)
  mutable s_slow_error : int;  (** slow-path entries: fault on an error page *)
  mutable s_chain_depth_peak : int;  (** deepest shadow chain walked by a fault *)
  mutable s_object_cache_evictions : int;
      (** cached persistent objects terminated by LRU pressure *)
}

let fresh_stats () =
  {
    s_faults = 0;
    s_zero_fill = 0;
    s_cow_faults = 0;
    s_pageins = 0;
    s_pageouts = 0;
    s_hits = 0;
    s_reactivations = 0;
    s_unlock_requests = 0;
    s_flushes = 0;
    s_objects_created = 0;
    s_pages_freed = 0;
    s_data_requests = 0;
    s_data_provided = 0;
    s_data_unavailable = 0;
    s_pageout_to_default = 0;
    s_collapses = 0;
    s_fast_faults = 0;
    s_hint_hits = 0;
    s_hint_misses = 0;
    s_burst_entered = 0;
    s_cluster_pages = 0;
    s_slow_busy = 0;
    s_slow_lock = 0;
    s_slow_pager = 0;
    s_data_writes = 0;
    s_laundered = 0;
    s_clean_hits = 0;
    s_pager_deaths = 0;
    s_death_zero_fills = 0;
    s_death_errors = 0;
    s_cow_steals = 0;
    s_cow_batched = 0;
    s_slow_error = 0;
    s_chain_depth_peak = 0;
    s_object_cache_evictions = 0;
  }

let reset_stats s =
  s.s_faults <- 0;
  s.s_zero_fill <- 0;
  s.s_cow_faults <- 0;
  s.s_pageins <- 0;
  s.s_pageouts <- 0;
  s.s_hits <- 0;
  s.s_reactivations <- 0;
  s.s_unlock_requests <- 0;
  s.s_flushes <- 0;
  s.s_objects_created <- 0;
  s.s_pages_freed <- 0;
  s.s_data_requests <- 0;
  s.s_data_provided <- 0;
  s.s_data_unavailable <- 0;
  s.s_pageout_to_default <- 0;
  s.s_collapses <- 0;
  s.s_fast_faults <- 0;
  s.s_hint_hits <- 0;
  s.s_hint_misses <- 0;
  s.s_burst_entered <- 0;
  s.s_cluster_pages <- 0;
  s.s_slow_busy <- 0;
  s.s_slow_lock <- 0;
  s.s_slow_pager <- 0;
  s.s_data_writes <- 0;
  s.s_laundered <- 0;
  s.s_clean_hits <- 0;
  s.s_pager_deaths <- 0;
  s.s_death_zero_fills <- 0;
  s.s_death_errors <- 0;
  s.s_cow_steals <- 0;
  s.s_cow_batched <- 0;
  s.s_slow_error <- 0;
  s.s_chain_depth_peak <- 0;
  s.s_object_cache_evictions <- 0

let stats_to_list s =
  [
    ("faults", s.s_faults);
    ("zero_fill", s.s_zero_fill);
    ("cow_faults", s.s_cow_faults);
    ("pageins", s.s_pageins);
    ("pageouts", s.s_pageouts);
    ("hits", s.s_hits);
    ("reactivations", s.s_reactivations);
    ("unlock_requests", s.s_unlock_requests);
    ("flushes", s.s_flushes);
    ("objects_created", s.s_objects_created);
    ("pages_freed", s.s_pages_freed);
    ("data_requests", s.s_data_requests);
    ("data_provided", s.s_data_provided);
    ("data_unavailable", s.s_data_unavailable);
    ("pageout_to_default", s.s_pageout_to_default);
    ("collapses", s.s_collapses);
    ("fast_faults", s.s_fast_faults);
    ("hint_hits", s.s_hint_hits);
    ("hint_misses", s.s_hint_misses);
    ("burst_entered", s.s_burst_entered);
    ("cluster_pages", s.s_cluster_pages);
    ("slow_busy", s.s_slow_busy);
    ("slow_lock", s.s_slow_lock);
    ("slow_pager", s.s_slow_pager);
    ("data_writes", s.s_data_writes);
    ("laundered", s.s_laundered);
    ("clean_hits", s.s_clean_hits);
    ("pager_deaths", s.s_pager_deaths);
    ("death_zero_fills", s.s_death_zero_fills);
    ("death_errors", s.s_death_errors);
    ("cow_steals", s.s_cow_steals);
    ("cow_batched", s.s_cow_batched);
    ("slow_error", s.s_slow_error);
    ("chain_depth_peak", s.s_chain_depth_peak);
    ("object_cache_evictions", s.s_object_cache_evictions);
  ]
