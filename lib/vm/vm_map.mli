(** Task address maps (§5.1): a sorted directory of valid address
    ranges, each mapping to a memory object and offset.

    Maps are two-level: to account for read/write sharing through
    inheritance, a top-level entry may refer to a second-level *sharing
    map* whose own entries refer to objects; per-task attributes
    (protection, inheritance) stay in the top-level entry, while changes
    to the memory itself take place in the sharing map and are seen by
    every task referencing it. As an optimisation, entries point
    directly at objects when no inheritance-sharing has occurred. *)

open Vm_types

type t

type entry = {
  mutable va_start : int;
  mutable va_end : int;  (** exclusive *)
  mutable protection : Mach_hw.Prot.t;
  mutable max_protection : Mach_hw.Prot.t;
  mutable inheritance : inheritance;
  mutable backing : entry_backing;
}

and entry_backing =
  | Direct of direct
  | Shared of { share_map : t; sh_offset : int }

and direct = {
  mutable d_obj : obj;
  mutable d_offset : int;
  mutable needs_copy : bool;  (** copy-on-write pending: shadow before writing *)
  d_from_copy : bool;
      (** entry came from a lazy message copy-out; its faults count as
          copy-out materialization *)
}

type region_info = {
  ri_start : int;
  ri_size : int;
  ri_protection : Mach_hw.Prot.t;
  ri_max_protection : Mach_hw.Prot.t;
  ri_inheritance : inheritance;
  ri_object_id : int option;  (** [None] for sharing-map regions *)
  ri_shared : bool;
  ri_name_port : port option;  (** the pager name port, as vm_regions returns *)
}

exception No_space
exception Bad_address of int

val create : Kctx.t -> pmap:Mach_hw.Pmap.t option -> ?va_limit:int -> unit -> t
val pmap : t -> Mach_hw.Pmap.t option
val kctx : t -> Kctx.t
val entries : t -> entry list
(** Sorted; for inspection and invariant checks. *)

val size : t -> int
(** Total mapped bytes. *)

val check_invariants : t -> (unit, string) result
(** Sorted, non-overlapping, page-aligned, positive spans — for
    property tests. *)

(** {2 Allocation (Table 3-3 / 3-4)} *)

val allocate : t -> ?addr:int -> size:int -> anywhere:bool -> unit -> int
(** [vm_allocate]: new zero-filled anonymous memory; returns the chosen
    address. Raises {!No_space}. *)

val allocate_with_object :
  t ->
  ?addr:int ->
  size:int ->
  anywhere:bool ->
  obj:obj ->
  offset:int ->
  ?needs_copy:bool ->
  ?from_copy:bool ->
  ?protection:Mach_hw.Prot.t ->
  ?max_protection:Mach_hw.Prot.t ->
  unit ->
  int
(** Map an existing object (consumes one reference the caller must have
    taken). Foundation of [vm_allocate_with_pager] and of mapped message
    transfer. *)

val deallocate : t -> addr:int -> size:int -> unit
(** [vm_deallocate]: unmap the range, releasing object references and
    hardware translations. Partial entries are clipped. *)

val destroy : t -> unit
(** Deallocate everything (task death). *)

(** {2 Attributes} *)

val protect : t -> addr:int -> size:int -> set_max:bool -> Mach_hw.Prot.t -> unit
(** [vm_protect]. Raises {!Bad_address} if the range has holes. *)

val set_inheritance : t -> addr:int -> size:int -> inheritance -> unit
(** [vm_inherit]. *)

val regions : t -> region_info list
(** [vm_regions]. *)

(** {2 Lookup (the fault path and data access)} *)

type lookup = {
  lk_entry_prot : Mach_hw.Prot.t;
  lk_obj : obj;  (** the first-level object to search from *)
  lk_offset : int;  (** offset of the faulting page within [lk_obj] *)
  lk_writable : bool;  (** hardware may map writable (no pending COW) *)
  lk_from_copy : bool;  (** fault materializes a lazily copied-out page *)
  lk_run : int;
      (** bytes from [lk_offset] to the end of the backing record — the
          faulting page plus the forward window of same-entry neighbors
          a clustered COW fault may resolve alongside it *)
}

val lookup :
  ?count:bool -> t -> addr:int -> write:bool -> (lookup, [ `Invalid_address | `Protection ]) result
(** Resolve an address for an access: follows sharing maps, checks
    protection, and resolves pending copy-on-write for writes by
    interposing a shadow object (§5.5 "copy-on-write" step). For reads
    of COW regions, [lk_writable] is false: the page must be mapped
    read-only so the eventual write faults.

    Lookups first consult the map's last-hit hint, then binary-search
    the sorted entry index; [count] (default true) controls whether the
    hint hit/miss statistics are charged — the fault handler passes
    [~count:false] for its internal re-lookups so the counters measure
    one probe per fault. *)

val fork : t -> child_pmap:Mach_hw.Pmap.t option -> t
(** Build a child map per the inheritance attributes (§3.3): [Share]
    promotes the parent entry into a sharing map referenced by both;
    [Copy] sets up symmetric copy-on-write; [None] leaves a hole. *)

val copy_region : src:t -> src_addr:int -> size:int -> dst:t -> ?dst_addr:int -> unit -> int
(** Virtual (copy-on-write) copy of [size] bytes worth of pages from
    [src] into fresh address space of [dst] (the mechanism behind
    [vm_copy], large message transfer, and [fs_read_file]'s reply).
    Returns the destination address. *)

(** {2 Message copy objects ([vm_map_copyin] / [vm_map_copyout])}

    At send time the kernel snapshots the sender's region into a
    kernel-held copy object: the sender's entries are COW-protected
    ([needs_copy] + pmap write-protect) and the copy holds object
    references — no bytes move. The message carries the handle; at
    receive time {!copyout} maps it with [needs_copy = true] and pages
    materialize lazily through the fault path. *)

type copy_piece = {
  cpc_rel : int;  (** offset of this piece within the copy *)
  cpc_span : int;
  cpc_obj : obj;  (** referenced; released by copyout-consume or discard *)
  cpc_offset : int;
}

type vm_copy = {
  vc_kctx : Kctx.t;
  vc_size : int;  (** page-rounded bytes covered *)
  vc_pieces : copy_piece list;  (** tile [0, vc_size) in order *)
  mutable vc_consumed : bool;
}

type Mach_ipc.Message.copy_payload += Vm_copy_handle of vm_copy
      (** how a copy object travels inside a {!Mach_ipc.Message.Ool_copy}
          item between tasks of the same kernel *)

val copyin : t -> addr:int -> size:int -> vm_copy
(** [vm_map_copyin]: snapshot [addr, addr+size) (page-rounded). Charges
    one map op per page (the COW write-protect); copies no bytes.
    Raises {!Bad_address} if the range has holes. Increments the
    kernel's [s_copyins] counter. *)

val copyout : t -> vm_copy -> ?addr:int -> unit -> int
(** [vm_map_copyout]: map the copy into [t] at a fresh address (consumes
    the copy — its references move to the new entries). O(pieces) map
    ops; first touch of each page faults ([lk_from_copy]). Raises
    [Invalid_argument] if the copy was already consumed or belongs to a
    different kernel (remote copies go through the netmem-style export
    instead). *)

val copy_discard : vm_copy -> unit
(** Drop an unconsumed copy object (send failed, message destroyed).
    Idempotent. *)

val copy_size : vm_copy -> int
