open Vm_types
module Engine = Mach_sim.Engine
module Sched = Mach_sim.Sched
module Trace = Mach_sim.Trace
module Waitq = Mach_sim.Waitq
module Metrics = Mach_util.Metrics
module Phys_mem = Mach_hw.Phys_mem
module Pmap = Mach_hw.Pmap
module Port_space = Mach_ipc.Port_space

type t = {
  engine : Engine.t;
  ctx : Mach_ipc.Context.t;
  host : int;
  params : Mach_hw.Machine.params;
  sched : Sched.t;
  mem : Phys_mem.t;
  page_size : int;
  node : Mach_ipc.Transport.node;
  kspace : Port_space.t;
  queues : Page_queues.t;
  stats : stats;
  metrics : Metrics.registry;
  trace : Trace.t;
  fault_hist : Metrics.histogram;
  objects_by_port : (int, obj) Hashtbl.t;
  objects_by_request : (int, obj) Hashtbl.t;
  cached_objects : obj Mach_util.Dlist.t;
  cached_index : (int, obj Mach_util.Dlist.node) Hashtbl.t;
  mutable object_cache_cap : int;
  mutable default_pager_port : port option;
  mutable next_obj_id : int;
  reserved_frames : int;
  free_wait : Waitq.t;
  pageout_wanted : Waitq.t;
  mutable pager_timeout_us : float;
  mutable data_write_release_timeout_us : float;
  mutable obj_terminator : t -> obj -> unit;
  holdings : (int, holding) Hashtbl.t;
  mutable next_write_id : int;
  mutable rescue_writer : (bytes -> unit) option;
  mutable enable_collapse : bool;
      (** merge single-referenced anonymous shadow chains (ablation A1) *)
  mutable cluster_pages : int;
      (** cluster-in window: max pages per pager_data_request on a hard
          read fault (1 disables clustering) *)
  mutable enable_cow_steal : bool;
      (** copy engine: rename sole-user pages up the chain instead of
          copying them *)
  mutable enable_cow_cluster : bool;
      (** copy engine: resolve a window of adjacent pending-copy pages
          per COW write fault *)
  cow_batch_hist : Metrics.histogram;
      (** pages resolved per COW write fault (1 = no clustering won) *)
}

let fresh_obj_id t =
  let id = t.next_obj_id in
  t.next_obj_id <- id + 1;
  id

let pages_of_bytes t bytes = (bytes + t.page_size - 1) / t.page_size
let trunc_page t addr = addr land lnot (t.page_size - 1)
let round_page t addr = (addr + t.page_size - 1) land lnot (t.page_size - 1)

let try_alloc_frame t ~privileged =
  let floor_frames = if privileged then 0 else t.reserved_frames in
  if Phys_mem.free_frames t.mem > floor_frames then Phys_mem.alloc t.mem else None

(* Watermarks on the free-frame count. Below the high watermark the
   pageout daemon works; below the low watermark unprivileged allocators
   additionally throttle while laundry is in flight, letting in-progress
   cleans complete instead of racing the daemon for the last frames. *)
let free_target t = max (2 * t.reserved_frames) (Phys_mem.total_frames t.mem / 20)
let free_high_watermark = free_target
let free_low_watermark t = max (t.reserved_frames + 1) (free_target t / 2)
let need_pageout t = Phys_mem.free_frames t.mem < free_high_watermark t

let alloc_frame t ~privileged =
  let rec loop () =
    let below_low = Phys_mem.free_frames t.mem < free_low_watermark t in
    if
      (not privileged) && below_low
      && Page_queues.laundry_count t.queues > 0
    then begin
      (* Laundry in flight: a release (or the rescue timer) will free
         frames; wait for it rather than draining toward the reserve. *)
      Waitq.broadcast t.pageout_wanted;
      Waitq.wait t.free_wait;
      loop ()
    end
    else
      match try_alloc_frame t ~privileged with
      | Some f ->
        if need_pageout t then Waitq.broadcast t.pageout_wanted;
        f
      | None ->
        Waitq.broadcast t.pageout_wanted;
        Waitq.wait t.free_wait;
        loop ()
  in
  loop ()

let free_frame t f =
  Phys_mem.free t.mem f;
  Waitq.broadcast t.free_wait

(* Every CPU cost in the VM layer — fault service, map operations,
   page copies, the pageout daemon's accounting — occupies one of the
   host's processors for its duration. *)
let charge t us = if us > 0.0 then Sched.compute t.sched us

(* The fallback terminator releases resident pages but knows nothing of
   pager ports; Pager_client installs the full version at boot. *)
let default_terminator t obj =
  obj.obj_alive <- false;
  let pages = Hashtbl.fold (fun _ p acc -> p :: acc) obj.obj_pages [] in
  List.iter
    (fun (p : page) ->
      if not p.busy then begin
        List.iter (fun (pmap, vpn) -> Pmap.remove pmap ~vpn) p.mappings;
        p.mappings <- [];
        Page_queues.remove t.queues p;
        Hashtbl.remove obj.obj_pages p.p_offset;
        free_frame t p.frame;
        t.stats.s_pages_freed <- t.stats.s_pages_freed + 1
      end)
    pages

let create engine ctx ~host ~params ~mem ?reserved_frames ?(pager_timeout_us = 2_000_000.0)
    ?metrics ?trace () =
  let reserved =
    match reserved_frames with
    | Some r -> r
    | None -> max 2 (Phys_mem.total_frames mem / 50)
  in
  let sched =
    Sched.create engine ~cpus:params.Mach_hw.Machine.cpus
      ~quantum_us:params.Mach_hw.Machine.quantum_us
      ~context_switch_us:params.Mach_hw.Machine.context_switch_us ()
  in
  (* The host's observability spine: a metrics registry (per host) and
     a causal trace (shared across a cluster's hosts when the caller
     passes one trace to every boot). *)
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let trace = match trace with Some tr -> tr | None -> Trace.create engine in
  Sched.set_trace sched (Some trace);
  Trace.add_cpu_hook trace (fun name ->
      match Sched.running_cpu sched name with Some c -> c | None -> -1);
  let stats = fresh_stats () in
  let node =
    {
      Mach_ipc.Transport.node_host = host;
      node_params = params;
      node_page_size = Phys_mem.page_size mem;
      node_stats = Mach_ipc.Transport.fresh_ipc_stats ();
      node_sched = Some sched;
      node_handoff_enabled = true;
      node_trace = Some trace;
    }
  in
  let queues = Page_queues.create () in
  (* The existing mutable stats blocks are the registry's O(1) handles:
     register each as a source so snapshot/reset cover every subsystem
     without touching any increment site. *)
  Metrics.register_source metrics ~subsystem:"vm"
    ~reset:(fun () -> reset_stats stats)
    (fun () -> stats_to_list stats);
  Metrics.register_source metrics ~subsystem:"ipc"
    ~reset:(fun () -> Mach_ipc.Transport.reset_ipc_stats node.Mach_ipc.Transport.node_stats)
    (fun () ->
      Mach_ipc.Transport.ipc_stats_to_list node.Mach_ipc.Transport.node_stats);
  Metrics.register_source metrics ~subsystem:"sched"
    ~reset:(fun () -> Sched.reset_stats (Sched.stats sched))
    (fun () -> Sched.stats_to_list (Sched.stats sched));
  Metrics.gauge metrics ~subsystem:"vm" "free_frames" (fun () -> Phys_mem.free_frames mem);
  Metrics.gauge metrics ~subsystem:"vm" "active_pages" (fun () ->
      Page_queues.active_count queues);
  Metrics.gauge metrics ~subsystem:"vm" "inactive_pages" (fun () ->
      Page_queues.inactive_count queues);
  Metrics.gauge metrics ~subsystem:"vm" "laundry_pages" (fun () ->
      Page_queues.laundry_count queues);
  Metrics.gauge metrics ~subsystem:"sched" "run_queued" (fun () -> Sched.queued sched);
  let fault_hist = Metrics.histogram metrics ~subsystem:"vm" "fault_us" in
  let cow_batch_hist = Metrics.histogram metrics ~subsystem:"vm" "cow_batch" in
  {
    engine;
    ctx;
    host;
    params;
    sched;
    mem;
    page_size = Phys_mem.page_size mem;
    node;
    kspace = Port_space.create ctx ~home:host;
    queues;
    stats;
    metrics;
    trace;
    fault_hist;
    objects_by_port = Hashtbl.create 64;
    objects_by_request = Hashtbl.create 64;
    cached_objects = Mach_util.Dlist.create ();
    cached_index = Hashtbl.create 64;
    object_cache_cap = 64;
    default_pager_port = None;
    next_obj_id = 1;
    reserved_frames = reserved;
    free_wait = Waitq.create ();
    pageout_wanted = Waitq.create ();
    pager_timeout_us;
    data_write_release_timeout_us = 500_000.0;
    obj_terminator = default_terminator;
    holdings = Hashtbl.create 32;
    next_write_id = 1;
    rescue_writer = None;
    enable_collapse = true;
    cluster_pages = 8;
    enable_cow_steal = true;
    enable_cow_cluster = true;
    cow_batch_hist;
  }
