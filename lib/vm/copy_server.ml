(* Network export of a message copy object.

   When an out-of-line region travels to another host, the bytes do not:
   the sending kernel parks the vm_map_copyin snapshot in a private
   kernel map and serves it as a memory object over the external-pager
   protocol (the netmem shape). The message carries only a send right to
   that memory object; the receiving kernel maps it like any
   manager-backed region and pages cross the wire on demand, one
   data_request/data_provided exchange per fault cluster.

   Lifecycle: the receiving kernel's pager_init names its request port;
   when the receiver is done (vm_deallocate / task death) its kernel
   destroys that port, our death hook tears the export down, and the
   server thread exits. *)

module Engine = Mach_sim.Engine
module Port = Mach_ipc.Port
module Port_space = Mach_ipc.Port_space
module Transport = Mach_ipc.Transport
module Message = Mach_ipc.Message
module Prot = Mach_hw.Prot
module Pmap = Mach_hw.Pmap

let log = Logs.Src.create "mach.copy_server" ~doc:"remote copy-object export"

module Log = (val Logs.src_log log)

let export kctx copy =
  let ctx = kctx.Kctx.ctx in
  let host = kctx.Kctx.host in
  let size = Vm_map.copy_size copy in
  (* Park the snapshot in a private kernel map: the copy's references
     move here, and reads below materialize pages through the ordinary
     (lazy copy-out) fault path only when the remote side asks. *)
  let map = Vm_map.create kctx ~pmap:(Some (Pmap.create kctx.Kctx.mem)) () in
  let base = Vm_map.copyout map copy () in
  let space = Port_space.create ctx ~home:host in
  let mo = Port.create ctx ~home:host ~backlog:64 () in
  let mo_name = Port_space.insert space mo Message.Receive_right in
  let torn_down = ref false in
  let teardown () =
    if not !torn_down then begin
      torn_down := true;
      Vm_map.destroy map;
      (* Destroying the space kills [mo], waking the server loop. *)
      Port_space.destroy space
    end
  in
  let serve_request ~request ~offset ~length =
    let lo = max 0 offset in
    let hi = min size (offset + length) in
    if hi <= lo then ()
    else
      match Access.read_bytes kctx map ~addr:(base + lo) ~len:(hi - lo) () with
      | Ok data ->
        Transport.send kctx.Kctx.node
          (Pager_iface.encode_m2k
             (Pager_iface.Data_provided { offset = lo; data; lock_value = Prot.none })
             ~request)
        |> ignore
      | Error e ->
        Log.warn (fun m -> m "copy export read failed: %a" Access.pp_error e);
        Transport.send kctx.Kctx.node
          (Pager_iface.encode_m2k
             (Pager_iface.Data_unavailable { offset = lo; size = hi - lo })
             ~request)
        |> ignore
  in
  Engine.spawn kctx.Kctx.engine ~name:"copy-server" (fun () ->
      let rec loop () =
        match Transport.receive kctx.Kctx.node space ~from:(`Port mo_name) () with
        | Error _ -> teardown ()
        | Ok msg -> (
          (match Pager_iface.decode_k2m msg with
          | exception Pager_iface.Malformed reason ->
            Log.warn (fun m -> m "malformed message for exported copy: %s" reason)
          | Pager_iface.Init { request; _ } ->
            (* The receiver's kernel is attached; its request port's
               death is the signal that it unmapped the region. *)
            ignore (Port.on_death request teardown)
          | Pager_iface.Data_request { request; offset; length; _ } ->
            serve_request ~request ~offset ~length
          | Pager_iface.Data_unlock { request; offset; length; _ } ->
            (* Nothing is ever locked; re-provide so the faulter makes
               progress. *)
            serve_request ~request ~offset ~length
          | Pager_iface.Data_write _ | Pager_iface.Create _ | Pager_iface.Lock_completed _ ->
            (* Receiver-side writes shadow locally (needs_copy) and can
               never be written back; anything else is a protocol
               error we simply drop. *)
            Log.warn (fun m -> m "unexpected message for exported copy"));
          if !torn_down then () else loop ())
      in
      loop ());
  mo
