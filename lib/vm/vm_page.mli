(** Resident page operations (§5.3).

    A resident page structure corresponds to exactly one physical frame
    and records the memory object and offset it caches, the
    manager-imposed access lock, and everywhere it is validated in
    hardware (so it can be invalidated). *)

open Vm_types

val insert :
  Kctx.t ->
  obj ->
  offset:int ->
  frame:int ->
  busy:bool ->
  absent:bool ->
  page
(** Create a page caching [obj@offset] in [frame] and enter it in the
    object's page hash. Raises [Invalid_argument] if the offset is not
    page-aligned or already cached. *)

val lookup : obj -> offset:int -> page option
(** The §5.3 virtual-to-physical lookup for one object. *)

val wait_unbusy : page -> unit
(** Block until the page is not busy (data arrived / pageout done). *)

val set_unbusy : page -> unit
(** Clear busy and wake waiters. *)

val add_mapping : page -> Mach_hw.Pmap.t -> vpn:int -> unit
val drop_mapping : page -> Mach_hw.Pmap.t -> vpn:int -> unit

val remove_all_mappings : ?charge:bool -> Kctx.t -> page -> unit
(** Invalidate every hardware translation of this page (charging one map
    operation each), harvesting modify bits into [page.dirty] first.
    [~charge:false] skips the per-mapping time charge — callers that
    batch many pages under one charge site (the copy engine) use it and
    account for the whole batch themselves. *)

val protect_mappings : Kctx.t -> page -> Mach_hw.Prot.t -> unit
(** Reduce every mapping's protection (e.g. write-protect for COW). *)

val harvest_bits : Kctx.t -> page -> unit
(** Pull the hardware reference/modify bits into the page structure
    ([dirty]) and clear them. *)

val free : Kctx.t -> page -> unit
(** Remove from its object, the queues and all pmaps; release the frame.
    The page must not be busy. *)

val release_placeholder : Kctx.t -> page -> unit
(** Reclaim a speculative cluster-in placeholder ([cluster_spec], still
    busy+absent) whose data never arrived; no-op otherwise. Safe because
    no faulter ever waits on a speculative page. *)

val rename : ?charge:bool -> Kctx.t -> page -> obj -> offset:int -> unit
(** Move the page to cache a different (object, offset) — used by
    double paging to hand a dirty page to a holding object and by the
    copy engine to steal a sole-user page up the shadow chain. Existing
    hardware mappings are removed; [~charge] as in
    {!remove_all_mappings}. *)
