(** Memory object structures and lifecycle (§5.2).

    An internal object structure exists for every memory object used in
    an address map, or whose manager has advised that caching is
    permitted. The structure records the ports naming the object, its
    size, the address-map reference count, and the shadow chain for
    copy-on-write. *)

open Vm_types

val create_anonymous : Kctx.t -> size:int -> obj
(** Zero-fill memory from [vm_allocate]: no pager until first pageout,
    temporary, not persistent. *)

val create_shadow : Kctx.t -> backs:obj -> offset:int -> size:int -> obj
(** A shadow object holding changes to copy-on-write data (§5.5). Takes
    a reference on [backs]. *)

val find_by_port : Kctx.t -> Vm_types.port -> obj option
(** The §5.1 lookup: memory-object port → internal structure (includes
    cached, unreferenced objects). *)

val create_external : Kctx.t -> memory_object:Vm_types.port -> size:int -> obj
(** Look up or create the internal structure for a manager-provided
    memory object. A cached object is revived (its pages keep their
    contents — this is the §9 cache-win). The returned object has one
    more reference. [pager_init] is NOT sent here; the {!Pager_client}
    does that on first mapping. *)

val reference : obj -> unit

val deallocate : Kctx.t -> obj -> unit
(** Drop one reference. At zero, the object is either cached (manager
    called [pager_cache true]; past [kctx.object_cache_cap] the coldest
    cached object is evicted and terminated) or terminated via
    [kctx.obj_terminator] (normally {!Pager_client}'s, installed at
    boot). Shadow-chain references are released recursively, and when
    the released backing object survives with a single live shadower
    the chain is collapsed from that shadower — exiting a fork
    generation shortens the chain immediately instead of waiting for
    the survivor's next write fault. *)

val cache_is_member : Kctx.t -> obj -> bool
(** Whether the object currently sits in the unreferenced-object cache
    (diagnostic / tests). *)

val destroy_pages : Kctx.t -> obj -> unit
(** Free every resident page (waiting out busy ones). *)

val lookup_chain : obj -> offset:int -> (page * obj * int) option
(** Walk the shadow chain looking for a resident page covering
    [offset] (an offset in the *top* object): returns the page, the
    object that owns it and the chain depth (0 = top). *)

val chain_has_pager : obj -> offset:int -> (obj * int) option
(** The first object in the chain (starting at [obj]) that has a pager
    binding, with [offset] translated into that object; [None] if the
    whole chain is anonymous. *)

val chain_depth : obj -> int
(** Number of backing links below this object (0 = no shadow chain). *)

val collapse : Kctx.t -> obj -> unit
(** Shadow-chain collapse: while this object's backing object is an
    anonymous temporary referenced only by it (and idle), pull the
    backing's pages up (where not already shadowed) and splice it out
    of the chain. Keeps chains short under fork-heavy workloads; a
    no-op when [kctx.enable_collapse] is false. *)

val size_pages : Kctx.t -> obj -> int
val resident_count : obj -> int
val pp : Format.formatter -> obj -> unit
