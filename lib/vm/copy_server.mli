(** Network export of message copy objects (the netmem shape).

    A copy object whose receiver lives on another host is parked in a
    private kernel map and served over the external-pager protocol:
    the message carries only a send right to the returned memory
    object, and pages cross the wire on demand as the receiver faults
    them. The export tears itself down when the receiving kernel drops
    the object (its pager request port dies). *)

val export : Kctx.t -> Vm_map.vm_copy -> Mach_ipc.Message.port
(** Consumes the copy (its references move into the server's private
    map); returns the memory-object port to embed in the message as
    [Net_copy]. *)
