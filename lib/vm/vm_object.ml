open Vm_types
module Port = Mach_ipc.Port

let make kctx ~size ~pager ~temporary =
  kctx.Kctx.stats.s_objects_created <- kctx.Kctx.stats.s_objects_created + 1;
  {
    obj_id = Kctx.fresh_obj_id kctx;
    obj_size = size;
    pager;
    obj_pages = Hashtbl.create 16;
    ref_count = 1;
    can_persist = false;
    backing = None;
    temporary;
    obj_alive = true;
    paging_in_progress = 0;
    shadowers = [];
  }

let create_anonymous kctx ~size = make kctx ~size ~pager:No_pager ~temporary:true

let create_shadow kctx ~backs ~offset ~size =
  backs.ref_count <- backs.ref_count + 1;
  let obj = make kctx ~size ~pager:No_pager ~temporary:true in
  obj.backing <- Some { back_obj = backs; back_offset = offset };
  backs.shadowers <- obj :: backs.shadowers;
  obj

let find_by_port kctx port = Hashtbl.find_opt kctx.Kctx.objects_by_port (Port.id port)

(* The cache of unreferenced-but-persisting objects is an LRU: revival
   removes in O(1) via the obj_id index, insertion at the tail evicts
   the coldest entries past the cap (eviction = real termination). *)
module Dlist = Mach_util.Dlist

let cache_remove kctx obj =
  match Hashtbl.find_opt kctx.Kctx.cached_index obj.obj_id with
  | Some node ->
    Dlist.remove kctx.Kctx.cached_objects node;
    Hashtbl.remove kctx.Kctx.cached_index obj.obj_id
  | None -> ()

let cache_is_member kctx obj = Hashtbl.mem kctx.Kctx.cached_index obj.obj_id

let create_external kctx ~memory_object ~size =
  match find_by_port kctx memory_object with
  | Some obj ->
    obj.ref_count <- obj.ref_count + 1;
    if obj.ref_count = 1 then
      (* Revived from the cache: §9's repeated-use win. *)
      cache_remove kctx obj;
    if size > obj.obj_size then obj.obj_size <- size;
    obj
  | None ->
    let pager =
      Pager
        {
          memory_object;
          request_port = None;
          name_port = None;
          initialized = false;
          init_wait = Mach_sim.Ivar.create ();
          is_default = false;
          pager_dead = false;
        }
    in
    let obj = make kctx ~size ~pager ~temporary:false in
    Hashtbl.replace kctx.Kctx.objects_by_port (Port.id memory_object) obj;
    obj

let reference obj = obj.ref_count <- obj.ref_count + 1

let destroy_pages kctx obj =
  let rec drain () =
    let pages = Hashtbl.fold (fun _ p acc -> p :: acc) obj.obj_pages [] in
    match pages with
    | [] -> ()
    | _ ->
      List.iter
        (fun p ->
          (* Speculative cluster placeholders have no waiters and no
             data coming that anyone cares about: drop them instead of
             stalling teardown until the reclaim timer. *)
          if p.cluster_spec then Vm_page.release_placeholder kctx p
          else begin
            Vm_page.wait_unbusy p;
            (* The page may have been freed or renamed while we waited. *)
            if p.p_obj == obj && Hashtbl.mem obj.obj_pages p.p_offset then Vm_page.free kctx p
          end)
        pages;
      drain ()
  in
  drain ()

let lookup_chain obj ~offset =
  let rec walk cur off depth =
    match Vm_page.lookup cur ~offset:off with
    | Some page -> Some (page, cur, depth)
    | None -> (
      match cur.backing with
      | Some { back_obj; back_offset } -> walk back_obj (off + back_offset) (depth + 1)
      | None -> None)
  in
  walk obj offset 0

let chain_has_pager obj ~offset =
  let rec walk cur off =
    match cur.pager with
    | Pager _ -> Some (cur, off)
    | No_pager -> (
      match cur.backing with
      | Some { back_obj; back_offset } -> walk back_obj (off + back_offset)
      | None -> None)
  in
  walk obj offset

let chain_depth obj =
  let rec go acc = function
    | { backing = Some { back_obj; _ }; _ } -> go (acc + 1) back_obj
    | _ -> acc
  in
  go 0 obj

(* Splice out one collapsible backing object; true if progress was
   made. A backing object is collapsible when this object is its only
   user, it is anonymous and temporary (no manager owns the bytes), and
   no paging traffic is in flight. *)
let collapse_once kctx obj =
  match obj.backing with
  | Some { back_obj = b; back_offset = delta } when
      b.ref_count = 1 && b.temporary && b.obj_alive && b.paging_in_progress = 0
      && (match b.pager with No_pager -> true | Pager _ -> false) ->
    let pages = Hashtbl.fold (fun _ p acc -> p :: acc) b.obj_pages [] in
    List.iter
      (fun (page : page) ->
        if page.busy then ()
        else begin
          let up_offset = page.p_offset - delta in
          if
            up_offset >= 0
            && up_offset < Kctx.round_page kctx obj.obj_size
            && not (Hashtbl.mem obj.obj_pages up_offset)
          then Vm_page.rename kctx page obj ~offset:up_offset
          else
            (* Shadowed above (or out of view): the copy below is
               unreachable and can go. *)
            Vm_page.free kctx page
        end)
      pages;
    if Hashtbl.length b.obj_pages = 0 then begin
      (* Splice: obj inherits b's backing (and its reference). *)
      obj.backing <-
        (match b.backing with
        | Some { back_obj = bb; back_offset = bd } ->
          bb.shadowers <- obj :: List.filter (fun s -> s != b) bb.shadowers;
          Some { back_obj = bb; back_offset = delta + bd }
        | None -> None);
      b.shadowers <- [];
      b.obj_alive <- false;
      b.ref_count <- 0;
      kctx.Kctx.stats.s_collapses <- kctx.Kctx.stats.s_collapses + 1;
      true
    end
    else false (* busy pages remain; try again another time *)
  | Some _ | None -> false

let collapse kctx obj =
  if kctx.Kctx.enable_collapse then
    while collapse_once kctx obj do
      ()
    done

let rec deallocate kctx obj =
  if obj.ref_count <= 0 then invalid_arg "Vm_object.deallocate: no references";
  obj.ref_count <- obj.ref_count - 1;
  if obj.ref_count = 0 then begin
    let cacheable =
      obj.can_persist && (match obj.pager with Pager p -> not p.is_default | No_pager -> false)
    in
    if cacheable then begin
      let node = Dlist.node obj in
      Hashtbl.replace kctx.Kctx.cached_index obj.obj_id node;
      Dlist.push_back kctx.Kctx.cached_objects node;
      (* LRU cap: terminate the coldest entries past the limit. *)
      while Dlist.length kctx.Kctx.cached_objects > kctx.Kctx.object_cache_cap do
        match Dlist.pop_front kctx.Kctx.cached_objects with
        | None -> assert false
        | Some node ->
          let victim = Dlist.value node in
          Hashtbl.remove kctx.Kctx.cached_index victim.obj_id;
          kctx.Kctx.stats.s_object_cache_evictions <-
            kctx.Kctx.stats.s_object_cache_evictions + 1;
          terminate kctx victim
      done
    end
    else terminate kctx obj
  end

(* Terminate a zero-referenced object: run the installed terminator,
   release its backing reference, and — the copy engine's deallocate
   trigger — if the backing survives with exactly one live shadower,
   collapse from that shadower. A fork/exit generation ends here, not
   at some future write fault, so chains stop accreting depth. *)
and terminate kctx obj =
  let backing = obj.backing in
  kctx.Kctx.obj_terminator kctx obj;
  match backing with
  | Some { back_obj; _ } ->
    back_obj.shadowers <- List.filter (fun s -> s != obj) back_obj.shadowers;
    deallocate kctx back_obj;
    if back_obj.obj_alive && back_obj.ref_count = 1 then begin
      match List.filter (fun s -> s.obj_alive) back_obj.shadowers with
      | [ survivor ] -> collapse kctx survivor
      | _ -> ()
    end
  | None -> ()

let size_pages kctx obj = Kctx.pages_of_bytes kctx obj.obj_size
let resident_count obj = Hashtbl.length obj.obj_pages

let pp fmt obj =
  let pager =
    match obj.pager with
    | No_pager -> "anon"
    | Pager p -> if p.is_default then "default" else "external"
  in
  Format.fprintf fmt "obj#%d{%s size=%d resident=%d refs=%d%s%s}" obj.obj_id pager obj.obj_size
    (resident_count obj) obj.ref_count
    (if obj.backing = None then "" else " shadow")
    (if obj.obj_alive then "" else " dead")
