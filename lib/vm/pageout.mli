(** The pageout daemon (§5.4, §6.2.2, §6.2.3).

    Maintains the free-frame target by aging pages from the active queue
    to the inactive queue (clearing hardware reference bits so reuse is
    observable), freeing clean inactive pages, and laundering dirty ones:
    each reclaim seed grows into a run of adjacent same-object dirty
    pages shipped in one [pager_data_write], kept resident busy-cleaning
    until the manager's release. Anonymous memory being paged out for
    the first time is handed to the default pager with [pager_create]. *)

val start : Kctx.t -> unit
(** Spawn the daemon thread. It wakes when {!Kctx.alloc_frame} signals
    memory pressure (including the low-watermark throttle check), and
    backs off by [Machine.params.pageout_backoff_us] between passes
    while laundry is in flight. *)

val run_once : Kctx.t -> int
(** One reclamation pass (for deterministic unit tests): returns the
    number of frames actually freed. Laundered pages are not counted —
    their frames come back at [release_write] (or rescue) time. *)
