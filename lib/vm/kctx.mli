(** Per-host kernel VM context.

    One [Kctx.t] exists per independent Mach kernel (per host). It owns
    the physical memory, the page queues, the kernel's own IPC identity
    (used for the external-pager protocol), the registry mapping memory
    object ports to internal object structures (§5.1's port → object
    lookup), and the reserved-pool accounting of §6.2.3. *)

open Vm_types

type t = {
  engine : Mach_sim.Engine.t;
  ctx : Mach_ipc.Context.t;
  host : int;
  params : Mach_hw.Machine.params;
  sched : Mach_sim.Sched.t;
      (** the host's processors: every {!charge} occupies one for its
          duration, so kernel work contends, migrates and scales *)
  mem : Mach_hw.Phys_mem.t;
  page_size : int;
  node : Mach_ipc.Transport.node;  (** the kernel's IPC node identity *)
  kspace : Mach_ipc.Port_space.t;  (** the kernel task's port space *)
  queues : Page_queues.t;
  stats : stats;
  metrics : Mach_util.Metrics.registry;
      (** the host's unified registry: the vm/ipc/sched stats blocks are
          registered as sources at creation, pagers add theirs as they
          start; snapshot it for a vm_statistics-style full report *)
  trace : Mach_sim.Trace.t;
      (** the causal trace spine (shared across hosts in a cluster);
          disabled by default *)
  fault_hist : Mach_util.Metrics.histogram;
      (** per-fault latency in simulated us, observed by every
          {!Fault.handle} *)
  objects_by_port : (int, obj) Hashtbl.t;  (** memory-object port id → obj *)
  objects_by_request : (int, obj) Hashtbl.t;  (** pager-request port id → obj *)
  cached_objects : obj Mach_util.Dlist.t;
      (** unreferenced but persisting objects, LRU order (front =
          coldest); capped at [object_cache_cap], evictions terminate *)
  cached_index : (int, obj Mach_util.Dlist.node) Hashtbl.t;
      (** obj_id → cache node, so revival is O(1) instead of a scan *)
  mutable object_cache_cap : int;
  mutable default_pager_port : port option;
      (** where [pager_create] messages go; set at boot *)
  mutable next_obj_id : int;
  reserved_frames : int;  (** frames only privileged allocations may take *)
  free_wait : Mach_sim.Waitq.t;  (** woken when frames are freed *)
  pageout_wanted : Mach_sim.Waitq.t;  (** wakes the pageout daemon *)
  mutable pager_timeout_us : float;
      (** how long a fault waits for an external manager (§6.2.1) *)
  mutable data_write_release_timeout_us : float;
      (** §6.2.2: how long a manager may sit on pageout data before the
          kernel double-pages it to the default pager *)
  mutable obj_terminator : t -> obj -> unit;
      (** how to terminate an unreferenced object; Pager_client installs
          the port-aware version at boot *)
  holdings : (int, holding) Hashtbl.t;
      (** write-id → frame parked until the manager releases it (§6.2.2) *)
  mutable next_write_id : int;
  mutable rescue_writer : (bytes -> unit) option;
      (** how to push unreleased pageout data to the default pager's
          backing store; installed by the default pager at boot *)
  mutable enable_collapse : bool;
      (** merge single-referenced anonymous shadow objects into their
          shadows after COW resolution — the classic chain-length
          optimisation; exposed as a switch for the ablation bench *)
  mutable cluster_pages : int;
      (** cluster-in window: max pages per pager_data_request on a hard
          read fault (1 disables clustering) *)
  mutable enable_cow_steal : bool;
      (** copy engine: rename sole-user pages up the chain instead of
          copying them (ablation switch) *)
  mutable enable_cow_cluster : bool;
      (** copy engine: resolve a window of adjacent pending-copy pages
          per COW write fault (ablation switch) *)
  cow_batch_hist : Mach_util.Metrics.histogram;
      (** pages resolved per COW write fault (1 = no clustering won) *)
}

val create :
  Mach_sim.Engine.t ->
  Mach_ipc.Context.t ->
  host:int ->
  params:Mach_hw.Machine.params ->
  mem:Mach_hw.Phys_mem.t ->
  ?reserved_frames:int ->
  ?pager_timeout_us:float ->
  ?metrics:Mach_util.Metrics.registry ->
  ?trace:Mach_sim.Trace.t ->
  unit ->
  t
(** [metrics] and [trace] default to fresh instances; a cluster passes
    one shared trace so cross-host spans land in one buffer, while each
    host keeps its own registry (merge snapshots for cluster totals). *)

val fresh_obj_id : t -> int

val pages_of_bytes : t -> int -> int
val trunc_page : t -> int -> int
val round_page : t -> int -> int

(** {2 Frame allocation with reserved-pool semantics (§6.2.3)} *)

val try_alloc_frame : t -> privileged:bool -> int option
(** Unprivileged allocations fail once only the reserved frames remain;
    privileged (pageout-path) allocations may dig into the pool. *)

val alloc_frame : t -> privileged:bool -> int
(** Blocking form: kicks the pageout daemon and waits for a free frame.
    Below the low watermark, unprivileged callers throttle while laundry
    is in flight — in-progress cleans (or the §6.2.2 rescue timer) will
    free frames, so waiting beats draining toward the reserve. If no
    pageout daemon was started this can block forever — the engine will
    report the deadlock. *)

val free_frame : t -> int -> unit
(** Return a frame and wake frame waiters. *)

val free_target : t -> int
(** The number of free frames the pageout daemon tries to maintain. *)

val free_high_watermark : t -> int
(** Alias of {!free_target}: below this the daemon reclaims. *)

val free_low_watermark : t -> int
(** Below this, unprivileged allocators throttle while laundry is in
    flight. Always above the reserved pool, at most half the high
    watermark. *)

val need_pageout : t -> bool

val charge : t -> float -> unit
(** Occupy one of the host's processors for a CPU cost on the calling
    thread (queueing behind other runnable threads when all processors
    are busy). *)
