open Vm_types
module Engine = Mach_sim.Engine
module Waitq = Mach_sim.Waitq
module Phys_mem = Mach_hw.Phys_mem
module Machine = Mach_hw.Machine

(* Move aged pages (reference bit clear) from the active queue to the
   inactive queue; referenced pages rotate back with their bit cleared,
   approximating LRU with a clock sweep. *)
let refill_inactive kctx ~want =
  let queues = kctx.Kctx.queues in
  let scanned = ref 0 in
  let moved = ref 0 in
  let budget = Page_queues.active_count queues in
  while !moved < want && !scanned < budget do
    match Page_queues.oldest_active queues with
    | None -> scanned := budget
    | Some page ->
      incr scanned;
      if page.wire_count > 0 || page.busy then Page_queues.activate queues page
      else if Phys_mem.referenced kctx.Kctx.mem page.frame then begin
        Phys_mem.set_referenced kctx.Kctx.mem page.frame false;
        Page_queues.activate queues page (* second chance *)
      end
      else begin
        Page_queues.deactivate queues page;
        incr moved
      end
  done;
  !moved

(* Grow a reclaim seed into a run of adjacent same-object dirty pages —
   the write-side mirror of read clustering. Neighbors qualify whatever
   queue they are on, as long as they are unwired, not busy, unreferenced
   and dirty; the run is clamped to the cluster window. *)
let collect_run kctx seed =
  let ps = kctx.Kctx.page_size in
  let window = max 1 kctx.Kctx.cluster_pages in
  let obj = seed.p_obj in
  let eligible q =
    q.wire_count = 0
    && (not q.busy)
    && (not (Phys_mem.referenced kctx.Kctx.mem q.frame))
    && (Vm_page.harvest_bits kctx q;
        q.dirty)
  in
  let back = ref [] in
  let n = ref 1 in
  let off = ref (seed.p_offset - ps) in
  (try
     while !n < window && !off >= 0 do
       match Vm_page.lookup obj ~offset:!off with
       | Some q when eligible q ->
         back := q :: !back;
         incr n;
         off := !off - ps
       | _ -> raise Exit
     done
   with Exit -> ());
  let fwd = ref [] in
  let off = ref (seed.p_offset + ps) in
  (try
     while !n < window do
       match Vm_page.lookup obj ~offset:!off with
       | Some q when eligible q ->
         fwd := q :: !fwd;
         incr n;
         off := !off + ps
       | _ -> raise Exit
     done
   with Exit -> ());
  !back @ (seed :: List.rev !fwd)

(* Cap on pages busy-cleaning at once. Without it a pass over an
   all-dirty inactive queue would launder the whole queue, and the
   manager's message queue grows without bound — refaulting
   data_requests then wait behind seconds of queued writes and abort.
   Two cluster windows keep the disk pipelined while bounding the
   backlog a fault can land behind. *)
let laundry_limit kctx = max (2 * kctx.Kctx.cluster_pages) (Kctx.free_target kctx)

(* Returns the number of frames actually freed. Dirty pages are
   laundered — shipped to their manager in run-sized pager_data_writes
   and kept resident busy-cleaning — so they do not count as freed here;
   their frames come back at release_write (or rescue) time. Laundered
   pages do count toward the pass target, though: their frames are
   already on the way. *)
let reclaim_inactive kctx ~want =
  let queues = kctx.Kctx.queues in
  let freed = ref 0 in
  let laundered = ref 0 in
  let scanned = ref 0 in
  let budget = Page_queues.inactive_count queues in
  while !freed + !laundered < want && !scanned < budget do
    match Page_queues.oldest_inactive queues with
    | None -> scanned := budget
    | Some page ->
      incr scanned;
      if page.wire_count > 0 || page.busy then Page_queues.activate queues page
      else if Phys_mem.referenced kctx.Kctx.mem page.frame then begin
        (* Used while inactive: reactivate. *)
        kctx.Kctx.stats.s_reactivations <- kctx.Kctx.stats.s_reactivations + 1;
        Phys_mem.set_referenced kctx.Kctx.mem page.frame false;
        Page_queues.activate queues page
      end
      else begin
        Vm_page.harvest_bits kctx page;
        if page.dirty then begin
          if Page_queues.laundry_count queues >= laundry_limit kctx then
            (* Enough in flight; end the pass and let releases drain. *)
            scanned := budget
          else begin
            (match page.p_obj.pager with
            | No_pager -> Pager_client.bind_to_default_pager kctx page.p_obj
            | Pager _ -> ());
            match page.p_obj.pager with
            | Pager _ ->
              let run = collect_run kctx page in
              laundered := !laundered + List.length run;
              Pager_client.write_run kctx run ~dispose:Dispose_keep
            | No_pager ->
              (* No default pager registered: cannot clean; keep active. *)
              Page_queues.activate queues page
          end
        end
        else begin
          Vm_page.free kctx page;
          incr freed
        end
      end
  done;
  !freed

let run_once kctx =
  let target = Kctx.free_target kctx in
  let deficit = target - Phys_mem.free_frames kctx.Kctx.mem in
  if deficit <= 0 then 0
  else begin
    (* Keep the inactive queue at about a third of the active queue. *)
    let queues = kctx.Kctx.queues in
    let want_inactive =
      max deficit ((Page_queues.active_count queues / 3) - Page_queues.inactive_count queues)
    in
    ignore (refill_inactive kctx ~want:want_inactive);
    reclaim_inactive kctx ~want:deficit
  end

let start kctx =
  let backoff = kctx.Kctx.params.Machine.pageout_backoff_us in
  Engine.spawn kctx.Kctx.engine ~name:"pageout-daemon" (fun () ->
      let rec loop () =
        if Kctx.need_pageout kctx then begin
          let freed = run_once kctx in
          (* With laundry in flight (or progress just made), back off
             briefly and re-check — a release will free frames, and the
             low-watermark check in alloc_frame wakes us early. When
             nothing is reclaimable and nothing is in flight, block
             until an allocator or a release changes the world: a
             demand-driven daemon keeps the event queue empty at
             quiescence. *)
          if freed = 0 && Page_queues.laundry_count kctx.Kctx.queues = 0 then
            Waitq.wait kctx.Kctx.pageout_wanted
          else ignore (Waitq.wait_timeout kctx.Kctx.pageout_wanted ~timeout:backoff)
        end
        else Waitq.wait kctx.Kctx.pageout_wanted;
        loop ()
      in
      loop ())
