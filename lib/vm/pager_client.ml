open Vm_types
module Engine = Mach_sim.Engine
module Port = Mach_ipc.Port
module Port_space = Mach_ipc.Port_space
module Transport = Mach_ipc.Transport
module Message = Mach_ipc.Message
module Prot = Mach_hw.Prot
module Phys_mem = Mach_hw.Phys_mem
module Pmap = Mach_hw.Pmap

let log = Logs.Src.create "mach.pager" ~doc:"external pager protocol"

module Log = (val Logs.src_log log)

(* Fire-and-forget kernel send; the protocol is asynchronous. A full
   queue must not deadlock the kernel, so delivery retries run in a
   detached thread. *)
let kernel_send kctx msg =
  match Transport.send kctx.Kctx.node ~timeout:0.0 msg with
  | Ok () -> ()
  | Error Transport.Send_timed_out ->
    Engine.spawn kctx.Kctx.engine ~name:"kernel-send-retry" (fun () ->
        match Transport.send kctx.Kctx.node msg with
        | Ok () | Error _ -> ())
  | Error Transport.Send_invalid_port -> Log.debug (fun m -> m "send to dead port dropped")

let get_pager obj =
  match obj.pager with
  | Pager p -> p
  | No_pager -> invalid_arg "Pager_client: object has no pager"

(* --- write-holding bookkeeping ------------------------------------------
   Defined ahead of the request path because the pager-death handler
   (registered at initialization time) rescues outstanding holdings. *)

let fresh_write_id kctx =
  let id = kctx.Kctx.next_write_id in
  kctx.Kctx.next_write_id <- id + 1;
  id

(* [page] is still the cleaning page the holding shipped: not freed,
   renamed, or replaced while we slept. Busy-cleaning pages cannot be
   freed out from under us, but object teardown detaches structures. *)
let still_held (h : holding) page =
  page.p_obj == h.h_obj
  && (match Hashtbl.find_opt h.h_obj.obj_pages page.p_offset with
     | Some p -> p == page
     | None -> false)

(* §6.2.2 double paging: the manager sat on the data past the release
   timeout. Push the run's contents to the default pager's backing store
   and take the frames back. Cleaning pages lose their frames — waiters
   wake and re-resolve against the manager, which still owes the data it
   never released. Runs in a timer callback, so nothing here may block:
   mappings were removed at launder time, making every free charge-less. *)
let rescue kctx (h : holding) =
  if not h.h_released then begin
    h.h_released <- true;
    Hashtbl.remove kctx.Kctx.holdings h.h_write_id;
    let pages = List.filter (still_held h) h.h_pages in
    let rescued = List.length pages + List.length h.h_frames in
    kctx.Kctx.stats.s_pageout_to_default <-
      kctx.Kctx.stats.s_pageout_to_default + rescued;
    (match kctx.Kctx.rescue_writer with Some w -> w h.h_data | None -> ());
    List.iter (Kctx.free_frame kctx) h.h_frames;
    h.h_frames <- [];
    List.iter
      (fun page ->
        Vm_page.set_unbusy page;
        Vm_page.free kctx page)
      pages;
    h.h_pages <- []
  end

let release_write kctx ~write_id =
  match Hashtbl.find_opt kctx.Kctx.holdings write_id with
  | None -> () (* already rescued or bogus id *)
  | Some h ->
    h.h_released <- true;
    Hashtbl.remove kctx.Kctx.holdings write_id;
    List.iter (Kctx.free_frame kctx) h.h_frames;
    h.h_frames <- [];
    (* Partial release: the run's pages are handled one at a time, so
       under continued pressure the head of the run is freed and the
       tail stays clean-resident once the watermark is met again. *)
    List.iter
      (fun page ->
        if still_held h page then begin
          page.dirty <- false;
          Vm_page.set_unbusy page;
          match h.h_dispose with
          | Dispose_free -> Vm_page.free kctx page
          | Dispose_keep ->
            if Kctx.need_pageout kctx then Vm_page.free kctx page
            else Page_queues.deactivate kctx.Kctx.queues page
        end)
      h.h_pages;
    h.h_pages <- []

(* --- pager death --------------------------------------------------------
   The single pager-death story: when a manager's object port dies,
   every outstanding request on that object resolves deterministically,
   right now — zero-fill for anonymous-style objects (default-pager
   backed or temporary: their initial contents are zero by definition),
   fault error for file-backed ones — instead of each caller waiting out
   its own timeout. Future faults short-circuit on [pager_dead]. *)
let pager_died kctx obj =
  match obj.pager with
  | No_pager -> ()
  | Pager p when p.pager_dead -> ()
  | Pager p ->
    p.pager_dead <- true;
    let stats = kctx.Kctx.stats in
    stats.s_pager_deaths <- stats.s_pager_deaths + 1;
    Log.warn (fun m -> m "pager died for object %d" obj.obj_id);
    let anonymous = p.is_default || obj.temporary in
    let pages = Hashtbl.fold (fun _ pg acc -> pg :: acc) obj.obj_pages [] in
    List.iter
      (fun page ->
        if page.busy && page.absent then begin
          if page.cluster_spec then
            (* Speculative placeholder no faulter waits on: reclaim. *)
            Vm_page.release_placeholder kctx page
          else if anonymous then begin
            (* The frame is already zero-filled; resolve like
               data_unavailable. *)
            page.absent <- false;
            page.p_error <- false;
            obj.paging_in_progress <- max 0 (obj.paging_in_progress - 1);
            stats.s_zero_fill <- stats.s_zero_fill + 1;
            stats.s_death_zero_fills <- stats.s_death_zero_fills + 1;
            Page_queues.activate kctx.Kctx.queues page;
            Vm_page.set_unbusy page
          end
          else begin
            (* Mirror the slow-path timeout: error the placeholder so
               waiters fail the fault. *)
            page.p_error <- true;
            stats.s_death_errors <- stats.s_death_errors + 1;
            Vm_page.set_unbusy page
          end
        end
        else if (not (Prot.equal page.page_lock Prot.none)) || page.unlock_requested then
          (* The unlock can never arrive; wake waiters so the fault path
             re-checks against the dead pager. *)
          Mach_sim.Waitq.broadcast page.busy_wait)
      pages;
    (* Outstanding data_writes will never be released: run the §6.2.2
       rescue immediately instead of waiting out the timer. *)
    let doomed =
      Hashtbl.fold
        (fun _ h acc -> if h.h_obj == obj then h :: acc else acc)
        kctx.Kctx.holdings []
    in
    List.iter (rescue kctx) doomed

let make_request_ports kctx obj p =
  let ctx = kctx.Kctx.ctx in
  let request = Port.create ctx ~home:kctx.Kctx.host ~backlog:256 () in
  let name = Port.create ctx ~home:kctx.Kctx.host () in
  let request_name = Port_space.insert kctx.Kctx.kspace request Message.Receive_right in
  Port_space.enable kctx.Kctx.kspace request_name;
  ignore (Port_space.insert kctx.Kctx.kspace name Message.Receive_right);
  p.request_port <- Some request;
  p.name_port <- Some name;
  Hashtbl.replace kctx.Kctx.objects_by_request (Port.id request) obj;
  (request, name)

let ensure_initialized kctx obj =
  match obj.pager with
  | No_pager -> ()
  | Pager p ->
    if not p.initialized then begin
      p.initialized <- true;
      let request, name = make_request_ports kctx obj p in
      (* Fires immediately if the manager is already gone. *)
      ignore (Port.on_death p.memory_object (fun () -> pager_died kctx obj));
      kernel_send kctx
        (Pager_iface.encode_k2m ~reply:None
           (Pager_iface.Init { memory_object = p.memory_object; request; name })
           ~dest:p.memory_object);
      Mach_sim.Ivar.fill p.init_wait ()
    end

let send_data_request kctx p ~offset ~length ~desired_access =
  let request =
    match p.request_port with Some r -> r | None -> invalid_arg "data_request: not initialized"
  in
  kctx.Kctx.stats.s_data_requests <- kctx.Kctx.stats.s_data_requests + 1;
  Mach_sim.Trace.point kctx.Kctx.trace ~subsystem:"vm" "data_request";
  kernel_send kctx
    (Pager_iface.encode_k2m ~reply:None
       (Pager_iface.Data_request
          { memory_object = p.memory_object; request; offset; length; desired_access })
       ~dest:p.memory_object)

let request_page kctx obj ~offset ~desired_access =
  let p = get_pager obj in
  ensure_initialized kctx obj;
  let frame = Kctx.alloc_frame kctx ~privileged:p.is_default in
  let page = Vm_page.insert kctx obj ~offset ~frame ~busy:true ~absent:true in
  obj.paging_in_progress <- obj.paging_in_progress + 1;
  send_data_request kctx p ~offset ~length:kctx.Kctx.page_size ~desired_access;
  page

let rerequest kctx page ~desired_access =
  let p = get_pager page.p_obj in
  send_data_request kctx p ~offset:page.p_offset ~length:kctx.Kctx.page_size ~desired_access

let request_cluster kctx obj ~offset ~desired_access ~window =
  let p = get_pager obj in
  ensure_initialized kctx obj;
  let ps = kctx.Kctx.page_size in
  (* The demanded page blocks for a frame like any hard fault. While we
     slept another faulter may have installed the page; hand theirs back
     and let the caller wait on it. *)
  let frame = Kctx.alloc_frame kctx ~privileged:p.is_default in
  match Vm_page.lookup obj ~offset with
  | Some page ->
    Kctx.free_frame kctx frame;
    page
  | None ->
    let page = Vm_page.insert kctx obj ~offset ~frame ~busy:true ~absent:true in
    obj.paging_in_progress <- obj.paging_in_progress + 1;
    (* Cluster-in: extend the request over forward-adjacent pages that
       are not resident, as long as free frames come without waiting and
       memory is not already tight. The placeholders are speculative —
       no faulter waits on them — and marked [cluster_spec] so they can
       be reclaimed if the manager never fills them. *)
    let obj_end = Kctx.round_page kctx obj.obj_size in
    let spec = ref [] in
    let n = ref 1 in
    (try
       while !n < window do
         let off = offset + (!n * ps) in
         if off >= obj_end
            || Kctx.need_pageout kctx
            || Vm_page.lookup obj ~offset:off <> None
         then raise Exit;
         match Kctx.try_alloc_frame kctx ~privileged:false with
         | None -> raise Exit
         | Some f ->
           let sp = Vm_page.insert kctx obj ~offset:off ~frame:f ~busy:true ~absent:true in
           sp.cluster_spec <- true;
           obj.paging_in_progress <- obj.paging_in_progress + 1;
           spec := sp :: !spec;
           incr n
       done
     with Exit -> ());
    let extra = List.length !spec in
    kctx.Kctx.stats.s_cluster_pages <- kctx.Kctx.stats.s_cluster_pages + extra;
    if extra > 0 then begin
      (* Reclaim unfilled placeholders after the pager timeout so a
         manager that answers partially (or not at all) cannot pin
         frames forever. [release_placeholder] no-ops on pages that were
         filled or promoted to demanded pages in the meantime. *)
      let doomed = !spec in
      Engine.schedule kctx.Kctx.engine
        ~at:(Engine.now kctx.Kctx.engine +. kctx.Kctx.pager_timeout_us)
        (fun () -> List.iter (Vm_page.release_placeholder kctx) doomed)
    end;
    send_data_request kctx p ~offset ~length:((1 + extra) * ps) ~desired_access;
    page

let bind_to_default_pager kctx obj =
  match obj.pager with
  | Pager _ -> ()
  | No_pager ->
    let dp =
      match kctx.Kctx.default_pager_port with
      | Some p -> p
      | None -> failwith "Pager_client: no default pager registered"
    in
    let ctx = kctx.Kctx.ctx in
    (* The kernel creates the memory object and hands its receive right
       to the default pager via pager_create. *)
    let memory_object = Port.create ctx ~home:(Port.home dp) ~backlog:256 () in
    let p =
      {
        memory_object;
        request_port = None;
        name_port = None;
        initialized = true;
        init_wait = Mach_sim.Ivar.create ();
        is_default = true;
        pager_dead = false;
      }
    in
    obj.pager <- Pager p;
    Hashtbl.replace kctx.Kctx.objects_by_port (Port.id memory_object) obj;
    let request, name = make_request_ports kctx obj p in
    Mach_sim.Ivar.fill p.init_wait ();
    kernel_send kctx
      (Pager_iface.encode_k2m ~reply:None
         (Pager_iface.Create { new_memory_object = memory_object; request; name; size = obj.obj_size })
         ~dest:dp)

(* --- pageout (pager_data_write): laundered, clustered writeback -------- *)

(* A pageout ships a run of adjacent dirty pages in ONE pager_data_write
   (the write-side mirror of read clustering). The pages normally stay
   resident on the laundry queue, busy-cleaning, until the manager
   releases the data — so a refault during the clean waits on the busy
   machinery instead of round-tripping to the pager. Pages detached
   before the release (object termination) park their frames in
   [h_frames] instead. *)

(* Ship a prepared run: one holding record, one rescue timer, one
   pager_data_write. *)
let ship_run kctx obj ~offset ~data ~dispose ~pages ~frames =
  let p = get_pager obj in
  let write_id = fresh_write_id kctx in
  let h =
    {
      h_write_id = write_id;
      h_obj = obj;
      h_offset = offset;
      h_data = data;
      h_pages = pages;
      h_frames = frames;
      h_dispose = dispose;
      h_released = false;
    }
  in
  Hashtbl.replace kctx.Kctx.holdings write_id h;
  kctx.Kctx.stats.s_data_writes <- kctx.Kctx.stats.s_data_writes + 1;
  Engine.schedule kctx.Kctx.engine
    ~at:(Engine.now kctx.Kctx.engine +. kctx.Kctx.data_write_release_timeout_us)
    (fun () -> rescue kctx h);
  kernel_send kctx
    (Pager_iface.encode_k2m ~reply:p.request_port
       (Pager_iface.Data_write { memory_object = p.memory_object; offset; data; write_id })
       ~dest:p.memory_object)

(* Launder a run of adjacent dirty pages: keep them resident and
   busy-cleaning until the manager's release. [pages] must be non-empty,
   same-object, offset-sorted, offset-adjacent, non-busy. *)
let write_run kctx pages ~dispose =
  let obj = (List.hd pages).p_obj in
  let ps = kctx.Kctx.page_size in
  let stats = kctx.Kctx.stats in
  let n = List.length pages in
  stats.s_pageouts <- stats.s_pageouts + n;
  stats.s_laundered <- stats.s_laundered + n;
  (* Mark the whole run busy-cleaning before anything can block, so a
     concurrent faulter waits on the busy machinery instead of racing. *)
  List.iter
    (fun page ->
      page.busy <- true;
      Page_queues.launder kctx.Kctx.queues page)
    pages;
  (* Invalidate mappings (this may charge map-op time and block — safe
     now that the pages are busy), then snapshot the run contents. *)
  List.iter (fun page -> Vm_page.remove_all_mappings kctx page) pages;
  let data = Bytes.create (n * ps) in
  List.iteri
    (fun i page -> Bytes.blit (Phys_mem.data kctx.Kctx.mem page.frame) 0 data (i * ps) ps)
    pages;
  ship_run kctx obj ~offset:(List.hd pages).p_offset ~data ~dispose ~pages ~frames:[]

let page_out kctx page ~flush =
  if flush then kctx.Kctx.stats.s_flushes <- kctx.Kctx.stats.s_flushes + 1;
  write_run kctx [ page ] ~dispose:(if flush then Dispose_free else Dispose_keep)

(* Object teardown cannot wait for an untrusted manager's release:
   detach the run's page structures outright and park the frames in the
   holding; release/rescue returns the frames later. *)
let write_run_detached kctx pages =
  let obj = (List.hd pages).p_obj in
  let ps = kctx.Kctx.page_size in
  let stats = kctx.Kctx.stats in
  let n = List.length pages in
  stats.s_pageouts <- stats.s_pageouts + n;
  let offset = (List.hd pages).p_offset in
  (* Detach the structures before anything can block, so no other path
     finds the pages mid-teardown. *)
  List.iter
    (fun page ->
      Page_queues.remove kctx.Kctx.queues page;
      Hashtbl.remove obj.obj_pages page.p_offset)
    pages;
  List.iter (fun page -> Vm_page.remove_all_mappings kctx page) pages;
  let data = Bytes.create (n * ps) in
  List.iteri
    (fun i page -> Bytes.blit (Phys_mem.data kctx.Kctx.mem page.frame) 0 data (i * ps) ps)
    pages;
  let frames = List.map (fun page -> page.frame) pages in
  ship_run kctx obj ~offset ~data ~dispose:Dispose_free ~pages:[] ~frames

(* Group an offset-sorted page list into maximal runs of adjacent pages
   satisfying [eligible], each clamped to the cluster window. *)
let adjacent_runs kctx pages ~eligible =
  let ps = kctx.Kctx.page_size in
  let window = max 1 kctx.Kctx.cluster_pages in
  let runs, cur =
    List.fold_left
      (fun (runs, cur) page ->
        if not (eligible page) then
          ((if cur = [] then runs else List.rev cur :: runs), [])
        else
          match cur with
          | prev :: _ when page.p_offset = prev.p_offset + ps && List.length cur < window ->
            (runs, page :: cur)
          | [] -> (runs, [ page ])
          | _ -> (List.rev cur :: runs, [ page ]))
      ([], []) pages
  in
  List.rev (if cur = [] then runs else List.rev cur :: runs)

let send_unlock kctx obj ~offset ~length ~desired_access =
  let p = get_pager obj in
  let request =
    match p.request_port with Some r -> r | None -> invalid_arg "send_unlock: not initialized"
  in
  kctx.Kctx.stats.s_unlock_requests <- kctx.Kctx.stats.s_unlock_requests + 1;
  kernel_send kctx
    (Pager_iface.encode_k2m ~reply:None
       (Pager_iface.Data_unlock
          { memory_object = p.memory_object; request; offset; length; desired_access })
       ~dest:p.memory_object)

(* --- manager→kernel handling ------------------------------------------ *)

let object_of_request_port kctx port =
  Hashtbl.find_opt kctx.Kctx.objects_by_request (Port.id port)

let apply_lock kctx page lock =
  page.page_lock <- lock;
  (* Reduce hardware protections: forbidden accesses must trap. *)
  List.iter
    (fun (pmap, vpn) ->
      match Pmap.lookup pmap ~vpn with
      | Some (_, cur) -> Pmap.protect pmap ~vpn ~prot:(Prot.diff cur lock)
      | None -> ())
    page.mappings;
  ignore kctx;
  if page.unlock_requested && not (Prot.can_write lock) then page.unlock_requested <- false;
  (* Faulters waiting for an unlock re-check. *)
  Mach_sim.Waitq.broadcast page.busy_wait

let fill_provided kctx obj ~offset ~data ~lock_value =
  let ps = kctx.Kctx.page_size in
  let stats = kctx.Kctx.stats in
  stats.s_data_provided <- stats.s_data_provided + 1;
  (* Partial trailing pages are discarded (§3.4.1). *)
  let whole_pages = Bytes.length data / ps in
  for i = 0 to whole_pages - 1 do
    let off = offset + (i * ps) in
    let chunk = Bytes.sub data (i * ps) ps in
    match Vm_page.lookup obj ~offset:off with
    | Some page when page.absent ->
      Phys_mem.write kctx.Kctx.mem page.frame ~off:0 chunk;
      page.absent <- false;
      page.p_error <- false;
      page.cluster_spec <- false;
      page.page_lock <- lock_value;
      obj.paging_in_progress <- max 0 (obj.paging_in_progress - 1);
      stats.s_pageins <- stats.s_pageins + 1;
      Page_queues.activate kctx.Kctx.queues page;
      Vm_page.set_unbusy page
    | Some page ->
      (* Data for a page the kernel already has: the bytes are stale
         (ours may be dirtier) but the lock is authoritative — the
         manager may be answering a lock-change request it saw as a
         re-request (the two can cross on the wire). Dropping the lock
         here strands any faulter waiting for it. *)
      apply_lock kctx page lock_value
    | None -> (
      (* Unsolicited pre-paged data from an advanced manager: accept it
         if a frame is available without waiting. *)
      match Kctx.try_alloc_frame kctx ~privileged:false with
      | Some frame ->
        let page = Vm_page.insert kctx obj ~offset:off ~frame ~busy:false ~absent:false in
        Phys_mem.write kctx.Kctx.mem frame ~off:0 chunk;
        page.page_lock <- lock_value;
        stats.s_pageins <- stats.s_pageins + 1;
        Page_queues.activate kctx.Kctx.queues page
      | None -> ())
  done

let data_unavailable kctx obj ~offset ~size =
  let ps = kctx.Kctx.page_size in
  let stats = kctx.Kctx.stats in
  stats.s_data_unavailable <- stats.s_data_unavailable + 1;
  let pages = (size + ps - 1) / ps in
  for i = 0 to pages - 1 do
    let off = offset + (i * ps) in
    match Vm_page.lookup obj ~offset:off with
    | Some page when page.absent ->
      (* Frame is already zero-filled. *)
      page.absent <- false;
      page.p_error <- false;
      page.cluster_spec <- false;
      obj.paging_in_progress <- max 0 (obj.paging_in_progress - 1);
      stats.s_zero_fill <- stats.s_zero_fill + 1;
      Page_queues.activate kctx.Kctx.queues page;
      Vm_page.set_unbusy page
    | Some _ | None -> ()
  done

let flush_range kctx obj ~offset ~length ~keep =
  let ps = kctx.Kctx.page_size in
  let lo = offset land lnot (ps - 1) in
  let hi = offset + length in
  let targets =
    Hashtbl.fold (fun off p acc -> if off >= lo && off < hi then p :: acc else acc) obj.obj_pages []
    |> List.sort (fun a b -> compare a.p_offset b.p_offset)
  in
  let resident page =
    match Hashtbl.find_opt obj.obj_pages page.p_offset with
    | Some p -> p == page
    | None -> false
  in
  let window = max 1 kctx.Kctx.cluster_pages in
  let dispose = if keep then Dispose_keep else Dispose_free in
  (* Walk the sorted range, shipping each maximal run of adjacent dirty
     pages as one pager_data_write. Eligibility is re-checked as each
     run is collected: shipping a run can block, and the world moves. *)
  let rec walk = function
    | [] -> ()
    | page :: rest when page.busy || not (resident page) -> walk rest
    | page :: rest when page.grant_hold > 0 ->
      (* A faulter just validated a translation for this page and has
         not yet retried its access. Let it commit before revoking —
         flushing inside that window starves write-shared hot pages
         (each kernel's grant revoked before use, forever). The hold
         is released with a broadcast. *)
      Mach_sim.Waitq.wait page.busy_wait;
      walk (page :: rest)
    | page :: rest ->
      Vm_page.harvest_bits kctx page;
      if page.dirty then begin
        let rec collect run last rest =
          match rest with
          | next :: rest'
            when next.p_offset = last.p_offset + ps
                 && (not next.busy)
                 && resident next
                 && List.length run < window ->
            Vm_page.harvest_bits kctx next;
            if next.dirty then collect (next :: run) next rest' else (List.rev run, rest)
          | _ -> (List.rev run, rest)
        in
        let run, rest = collect [ page ] page rest in
        if not keep then
          kctx.Kctx.stats.s_flushes <- kctx.Kctx.stats.s_flushes + List.length run;
        write_run kctx run ~dispose;
        walk rest
      end
      else begin
        if not keep then begin
          kctx.Kctx.stats.s_flushes <- kctx.Kctx.stats.s_flushes + 1;
          Vm_page.free kctx page
        end;
        walk rest
      end
  in
  walk targets

let handle_manager_message kctx (msg : Message.t) =
  match Pager_iface.decode_m2k msg with
  | exception Pager_iface.Malformed reason ->
    Log.warn (fun m -> m "malformed manager message: %s" reason)
  | call -> (
    match object_of_request_port kctx msg.header.dest with
    | None -> Log.warn (fun m -> m "manager message for unknown request port")
    | Some obj -> (
      match call with
      | Pager_iface.Data_provided { offset; data; lock_value } ->
        fill_provided kctx obj ~offset ~data ~lock_value
      | Pager_iface.Data_unavailable { offset; size } -> data_unavailable kctx obj ~offset ~size
      | Pager_iface.Data_lock { offset; length; lock_value } ->
        let ps = kctx.Kctx.page_size in
        let lo = offset land lnot (ps - 1) in
        let hi = offset + length in
        Hashtbl.iter
          (fun off page -> if off >= lo && off < hi then apply_lock kctx page lock_value)
          obj.obj_pages
      | Pager_iface.Flush_request { offset; length } ->
        flush_range kctx obj ~offset ~length ~keep:false;
        let p = get_pager obj in
        kernel_send kctx
          (Pager_iface.encode_k2m ~reply:p.request_port
             (Pager_iface.Lock_completed { memory_object = p.memory_object; offset; length })
             ~dest:p.memory_object)
      | Pager_iface.Clean_request { offset; length } ->
        flush_range kctx obj ~offset ~length ~keep:true;
        let p = get_pager obj in
        kernel_send kctx
          (Pager_iface.encode_k2m ~reply:p.request_port
             (Pager_iface.Lock_completed { memory_object = p.memory_object; offset; length })
             ~dest:p.memory_object)
      | Pager_iface.Cache { may_cache } -> obj.can_persist <- may_cache
      | Pager_iface.Release_write { write_id } -> release_write kctx ~write_id))

(* --- termination -------------------------------------------------------- *)

let terminate kctx obj =
  if obj.obj_alive then begin
    obj.obj_alive <- false;
    (* "The kernel releases the cached pages for that object, cleaning
       them as necessary" (§3.4): dirty pages go back to the manager
       before the ports die. Temporary objects are exempt — their
       contents need not outlive them, so cleaning would only ship
       garbage to the default pager. *)
    (match obj.pager with
    | Pager p when p.initialized && not obj.temporary ->
      let pages = Hashtbl.fold (fun _ pg acc -> pg :: acc) obj.obj_pages [] in
      let pages = List.sort (fun a b -> compare a.p_offset b.p_offset) pages in
      let runs =
        adjacent_runs kctx pages ~eligible:(fun pg ->
            (not pg.busy)
            &&
            (Vm_page.harvest_bits kctx pg;
             pg.dirty))
      in
      List.iter (fun run -> write_run_detached kctx run) runs
    | Pager _ | No_pager -> ());
    Vm_object.destroy_pages kctx obj;
    match obj.pager with
    | No_pager -> ()
    | Pager p ->
      Hashtbl.remove kctx.Kctx.objects_by_port (Port.id p.memory_object);
      (match p.request_port with
      | Some r ->
        Hashtbl.remove kctx.Kctx.objects_by_request (Port.id r);
        (match Port_space.name_of kctx.Kctx.kspace r with
        | Some n -> Port_space.deallocate kctx.Kctx.kspace n
        | None -> Port.destroy r)
      | None -> ());
      (match p.name_port with
      | Some n -> (
        match Port_space.name_of kctx.Kctx.kspace n with
        | Some nm -> Port_space.deallocate kctx.Kctx.kspace nm
        | None -> Port.destroy n)
      | None -> ())
  end

let install kctx = kctx.Kctx.obj_terminator <- terminate
