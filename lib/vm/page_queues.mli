(** The page-replacement queues (§5.4): an active queue in LRU order,
    an inactive queue of pageout candidates, and a laundry queue of
    dirty pages whose [pager_data_write] is outstanding (the cleaning
    state of the writeback pipeline — see DESIGN.md). (Pages "not
    caching any data" — the paper's free queue — live in
    {!Mach_hw.Phys_mem}'s free frame list; a freed page's structure is
    discarded.) *)

open Vm_types

type t

val create : unit -> t
val active_count : t -> int
val inactive_count : t -> int

val laundry_count : t -> int
(** Pages busy-cleaning: shipped to a manager, release not yet seen.
    Non-zero means pageout is in flight, so allocators may throttle
    below the low watermark instead of spinning the daemon. *)

val activate : t -> page -> unit
(** Put the page at the tail of the active queue (most recently used),
    removing it from whatever queue it was on. Wired and busy pages may
    be activated; the pageout daemon skips them. *)

val deactivate : t -> page -> unit
(** Move to the tail of the inactive queue and clear the hardware
    reference bit so future use is detectable. *)

val launder : t -> page -> unit
(** Move to the tail of the laundry queue ([q_state = Q_laundry]); the
    caller marks the page busy and ships its contents in a
    [pager_data_write]. The page leaves the queue on [release_write],
    on rescue timeout, or when freed. *)

val remove : t -> page -> unit
(** Detach from any queue (page being freed or wired). *)

val oldest_active : t -> page option
val oldest_inactive : t -> page option

val iter_inactive : t -> (page -> unit) -> unit
(** Snapshot iteration, safe against removal during the walk. *)

val iter_laundry : t -> (page -> unit) -> unit
(** Snapshot iteration over the laundry queue. *)

val check_invariants : t -> (unit, string) result
(** Oracle for the property tests: every page on a queue carries the
    matching [q_state], no page sits on two queues, and queue lengths
    agree with a membership walk. *)
