open Vm_types
module Engine = Mach_sim.Engine
module Trace = Mach_sim.Trace
module Metrics = Mach_util.Metrics
module Waitq = Mach_sim.Waitq
module Prot = Mach_hw.Prot
module Pmap = Mach_hw.Pmap
module Phys_mem = Mach_hw.Phys_mem
module Machine = Mach_hw.Machine

type policy = Wait_forever | Abort_after of float | Zero_fill_after of float
type outcome = Done | Invalid_address | Protection_failure | Pager_error

(* A dead manager answers nothing: requests against it resolve locally
   (see [Pager_client.pager_died] for in-flight pages). *)
let dead_pager obj =
  match obj.pager with
  | Pager p -> p.pager_dead || not (Mach_ipc.Port.alive p.memory_object)
  | No_pager -> false

(* Objects whose initial contents are zero by definition — their dead
   pager can be substituted by zero fill; file-backed data cannot. *)
let anonymous_style obj =
  obj.temporary || (match obj.pager with Pager p -> p.is_default | No_pager -> true)

(* The fault pipeline is split in two:

   - The FAST PATH handles the common case — the page is resident,
     not busy, not manager-locked against this access, and no
     copy-on-write is due. One map lookup (hinted), one hash probe,
     one pmap entry; no retry loop, no waiting.

   - The SLOW PATH is a retry driver over one resolution step per
     obstacle (busy page, manager lock, COW copy, pager request,
     zero fill). Each step may sleep; afterwards the world must be
     re-examined from the map lookup down, because entries, objects
     and pages can all have changed underneath us.

   Both paths converge on hardware validation and, when a cluster
   window is configured, a burst pre-enter of already-resident
   neighbor pages (mapped read-only so writes still fault for COW
   and dirty tracking). *)

let handle kctx map ~addr ~write ?policy () =
  let policy = match policy with Some p -> p | None -> Abort_after kctx.Kctx.pager_timeout_us in
  let stats = kctx.Kctx.stats in
  let ps = kctx.Kctx.page_size in
  let engine = kctx.Kctx.engine in
  let pm =
    match Vm_map.pmap map with
    | None -> invalid_arg "Fault.handle: map has no pmap"
    | Some pm -> pm
  in
  stats.s_faults <- stats.s_faults + 1;
  (* The causal span of this fault: opened before any charge, closed
     with the resolution kind. The id rides in every message this fault
     causes (pager_data_request, the manager's reply), so the whole
     duality path — fault → IPC → manager → IPC → resolution — reduces
     from the trace. [via] tracks the dominant resolution step. *)
  let tr = kctx.Kctx.trace in
  let span = Trace.span_open tr ~subsystem:"vm" ~label:"fault" in
  let t_entry = Engine.now engine in
  let via = ref "fast" in
  Kctx.charge kctx kctx.Kctx.params.Machine.fault_base_us;
  (* Timed wait helper: false when the policy's deadline passes first.
     Waits on the default pager are never aborted — it is "a trusted
     system component" (§6.2.2), merely slow under load. *)
  let wait_while page cond =
    let trusted =
      match page.p_obj.pager with Pager p -> p.is_default | No_pager -> false
    in
    match (if trusted then Wait_forever else policy) with
    | Wait_forever ->
      while cond () do
        Waitq.wait page.busy_wait
      done;
      true
    | Abort_after limit | Zero_fill_after limit ->
      let deadline = Engine.now engine +. limit in
      let rec loop () =
        if not (cond ()) then true
        else
          let remaining = deadline -. Engine.now engine in
          if remaining <= 0.0 then false
          else begin
            ignore (Waitq.wait_timeout page.busy_wait ~timeout:remaining);
            loop ()
          end
      in
      loop ()
  in
  let zero_fill_placeholder page =
    (* Substitute zeroes for data the manager failed to deliver; any
       late pager_data_provided for this page is dropped. *)
    Phys_mem.fill kctx.Kctx.mem page.frame '\000';
    page.absent <- false;
    page.p_error <- false;
    page.cluster_spec <- false;
    page.p_obj.paging_in_progress <- max 0 (page.p_obj.paging_in_progress - 1);
    stats.s_zero_fill <- stats.s_zero_fill + 1;
    Page_queues.activate kctx.Kctx.queues page;
    Vm_page.set_unbusy page
  in
  let lock_forbids page =
    if write then Prot.can_write page.page_lock else Prot.can_read page.page_lock
  in
  let note_depth depth =
    if depth > stats.s_chain_depth_peak then stats.s_chain_depth_peak <- depth
  in
  (* ---- copy engine predicates ------------------------------------- *)
  (* A COW source page can be STOLEN (renamed up the chain, no copy and
     no 400 µs charge) when nobody else can ever reach it: every object
     strictly below [top] down to the page's owner is an idle,
     sole-referenced, anonymous temporary — so the only reference path
     to the page runs through [top] — and the page itself is quiescent
     with hardware mappings in no pmap but ours. *)
  let chain_exclusive top ~owner =
    let rec walk cur =
      match cur.backing with
      | Some { back_obj = b; _ } ->
        b.ref_count = 1 && b.temporary && b.obj_alive && b.paging_in_progress = 0
        && (match b.pager with No_pager -> true | Pager _ -> false)
        && (b == owner || walk b)
      | None -> false
    in
    walk top
  in
  let can_steal first_obj (page : page) =
    kctx.Kctx.enable_cow_steal && (not page.busy) && (not page.absent) && (not page.p_error)
    && page.wire_count = 0
    && page.q_state <> Q_laundry
    && List.for_all (fun (pm', _) -> pm' == pm) page.mappings
    && chain_exclusive first_obj ~owner:page.p_obj
  in
  (* Manager-imposed lock check used while waiting for pager_data_lock:
     the page may be flushed out from under us; a dead page ends the
     wait and the fault re-runs from scratch. *)
  let forbidden page () =
    (match Vm_page.lookup page.p_obj ~offset:page.p_offset with
    | Some p -> p == page
    | None -> false)
    && lock_forbids page
  in
  (* Hardware validation protection: entry protection, minus write when
     the page must stay copy-on-write ([write_ok] false — pending COW or
     page from a backing object), minus the manager's lock. *)
  let hw_prot entry_prot ~write_ok ~page_lock =
    let prot = if write_ok then entry_prot else Prot.diff entry_prot Prot.write in
    Prot.diff prot page_lock
  in
  (* Burst pre-enter (the mapping half of cluster-in): after validating
     the faulting page, map forward-adjacent pages that are already
     resident and unmapped — read-only, so the first write to any of
     them still faults for COW resolution and dirty tracking. One map
     operation is charged for the whole batch. *)
  let burst_enter () =
    let window = kctx.Kctx.cluster_pages in
    if window > 1 then begin
      let batch = ref [] in
      let n = ref 0 in
      (try
         for i = 1 to window - 1 do
           let a = addr + (i * ps) in
           let vpn = a / ps in
           if Pmap.lookup pm ~vpn <> None then raise Exit;
           match Vm_map.lookup ~count:false map ~addr:a ~write:false with
           | Error _ -> raise Exit
           | Ok lk -> (
             match
               Vm_object.lookup_chain lk.Vm_map.lk_obj ~offset:lk.Vm_map.lk_offset
             with
             | Some (p, _, _)
               when (not p.busy) && (not p.absent) && (not p.p_error)
                    && not (Prot.can_read p.page_lock) ->
               let prot =
                 hw_prot lk.Vm_map.lk_entry_prot ~write_ok:false ~page_lock:p.page_lock
               in
               batch := (vpn, p.frame, prot) :: !batch;
               Vm_page.add_mapping p pm ~vpn;
               Page_queues.activate kctx.Kctx.queues p;
               incr n
             | Some _ | None -> raise Exit)
         done
       with Exit -> ());
      if !n > 0 then begin
        Pmap.enter_batch pm !batch;
        stats.s_burst_entered <- stats.s_burst_entered + !n;
        Kctx.charge kctx kctx.Kctx.params.Machine.map_op_us
      end
    end
  in
  (* Hardware-validate [page] for the faulting address and finish. Slow
     paths may have slept, so the map entry must be looked up afresh; a
     vanished entry still returns Done — the fault was resolved, the
     access simply re-faults. *)
  let finish page ~from_backing =
    (match Vm_map.lookup ~count:false map ~addr ~write with
    | Ok lk ->
      let write_ok = lk.Vm_map.lk_writable && not from_backing in
      let prot = hw_prot lk.Vm_map.lk_entry_prot ~write_ok ~page_lock:page.page_lock in
      let vpn = addr / ps in
      Pmap.enter pm ~vpn ~frame:page.frame ~prot;
      Vm_page.add_mapping page pm ~vpn;
      (* Hold the page across the charge: the map-op sleep is a yield
         point, and a manager flush landing inside it would revoke the
         translation before the faulter ever retries the access —
         under write contention the two kernels then revoke each other
         forever. The flush waits for the hold to drain instead. *)
      page.grant_hold <- page.grant_hold + 1;
      Kctx.charge kctx kctx.Kctx.params.Machine.map_op_us;
      burst_enter ();
      page.grant_hold <- page.grant_hold - 1;
      Waitq.broadcast page.busy_wait
    | Error _ -> ());
    Done
  in
  (* FAST PATH terminal: the lookup that got us here is still valid (no
     yields since), so validate directly from it. *)
  let fast_finish lk page ~from_backing =
    stats.s_fast_faults <- stats.s_fast_faults + 1;
    stats.s_hits <- stats.s_hits + 1;
    Page_queues.activate kctx.Kctx.queues page;
    let write_ok = lk.Vm_map.lk_writable && not from_backing in
    let prot = hw_prot lk.Vm_map.lk_entry_prot ~write_ok ~page_lock:page.page_lock in
    let vpn = addr / ps in
    Pmap.enter pm ~vpn ~frame:page.frame ~prot;
    Vm_page.add_mapping page pm ~vpn;
    page.grant_hold <- page.grant_hold + 1;
    Kctx.charge kctx kctx.Kctx.params.Machine.map_op_us;
    burst_enter ();
    page.grant_hold <- page.grant_hold - 1;
    Waitq.broadcast page.busy_wait;
    Done
  in
  (* ---- SLOW PATH -------------------------------------------------- *)
  let rec resolve tries =
    if tries > 512 then Pager_error
    else begin
      Trace.point tr ~subsystem:"vm" "map_lookup";
      match Vm_map.lookup ~count:false map ~addr ~write with
      | Error `Invalid_address -> Invalid_address
      | Error `Protection -> Protection_failure
      | Ok lk -> (
        let first_obj = lk.Vm_map.lk_obj in
        let first_off = lk.Vm_map.lk_offset in
        Trace.point tr ~subsystem:"vm" "shadow_walk";
        match Vm_object.lookup_chain first_obj ~offset:first_off with
        | Some (page, _owner, depth) ->
          note_depth depth;
          if page.busy then slow_busy page tries
          else if page.p_error then slow_error page tries
          else if forbidden page () then slow_lock page tries
          else if depth > 0 && write then slow_cow lk page tries
          else begin
            (* Resident and usable after at least one slow step. *)
            Page_queues.activate kctx.Kctx.queues page;
            finish page ~from_backing:(depth > 0)
          end
        | None -> (
          match Vm_object.chain_has_pager first_obj ~offset:first_off with
          | Some (powner, poffset) -> slow_pager powner poffset tries
          | None -> slow_zero_fill first_obj first_off tries))
    end
  (* Data in transit (or another faulter working the page): wait and
     retry. A speculative cluster placeholder is promoted to a demanded
     page first — the manager may have answered the cluster request
     only partially, so it is asked again for this page alone. *)
  and slow_busy page tries =
    stats.s_slow_busy <- stats.s_slow_busy + 1;
    via := (if page.q_state = Q_laundry then "clean_hit" else "busy");
    (* Refault on a busy-cleaning page: absorbed by the laundry
       machinery — the old pipeline would have detached the page and
       round-tripped a fresh data_request to the manager. *)
    if page.q_state = Q_laundry then stats.s_clean_hits <- stats.s_clean_hits + 1;
    if page.cluster_spec then begin
      page.cluster_spec <- false;
      Pager_client.rerequest kctx page
        ~desired_access:(if write then Prot.rw else Prot.read)
    end;
    if wait_while page (fun () -> page.busy) then resolve (tries + 1)
    else
      match policy with
      | Zero_fill_after _ when page.absent ->
        zero_fill_placeholder page;
        resolve (tries + 1)
      | Zero_fill_after _ | Wait_forever | Abort_after _ -> Pager_error
  (* A previous pager interaction failed for this page. Error refaults
     ride the same retry budget as the other slow steps and are counted,
     so a task spinning on a poisoned page shows up in the E10 trace
     reduction instead of vanishing. *)
  and slow_error page tries =
    stats.s_slow_error <- stats.s_slow_error + 1;
    via := "error";
    match policy with
    | Zero_fill_after _ ->
      zero_fill_placeholder page;
      resolve (tries + 1)
    | Wait_forever | Abort_after _ -> Pager_error
  (* Manager-imposed lock (§3.4.1): if the lock forbids this access,
     ask for an unlock and wait for pager_data_lock. *)
  and slow_lock page tries =
    stats.s_slow_lock <- stats.s_slow_lock + 1;
    via := "lock";
    let owner = page.p_obj in
    if dead_pager owner then
      (* The unlock can never arrive. Anonymous-style objects shed the
         dead manager's lock; file-backed accesses fail. *)
      if anonymous_style owner then begin
        page.page_lock <- Prot.none;
        page.unlock_requested <- false;
        Waitq.broadcast page.busy_wait;
        resolve (tries + 1)
      end
      else begin
        stats.s_death_errors <- stats.s_death_errors + 1;
        Pager_error
      end
    else begin
      (match owner.pager with
      | Pager _ when not page.unlock_requested ->
        page.unlock_requested <- true;
        Pager_client.send_unlock kctx owner ~offset:page.p_offset ~length:ps
          ~desired_access:(if write then Prot.write else Prot.read)
      | Pager _ | No_pager -> ());
      (* The wait also breaks on pager death ([pager_died] broadcasts);
         the retry re-enters [slow_lock] and takes the dead branch. *)
      if wait_while page (fun () -> forbidden page () && not (dead_pager owner)) then
        resolve (tries + 1)
      else Pager_error
    end
  (* Copy-on-write: the page lives in a backing object; give the first
     object its own copy (§5.5). This is the copy engine's main stage:
     the faulting page is STOLEN (renamed up, no copy) when it has no
     other possible user, or copied otherwise; then a forward window of
     adjacent pending-copy pages in the same record is resolved the
     same way under the same fault — one fault_base, one batched page
     charge, one batched map charge, one pmap validation. *)
  and slow_cow lk page tries =
    let first_obj = lk.Vm_map.lk_obj in
    let first_off = lk.Vm_map.lk_offset in
    let copies = ref 0 in
    let removed = ref false in
    (* Steal: move the page itself into the faulting object. The stale
       read-only translations it carries (ours by [can_steal]) drop with
       the rename; accounting is deferred to the batch charge sites. *)
    let steal src ~off =
      Vm_page.harvest_bits kctx src;
      if src.mappings <> [] then removed := true;
      Vm_page.rename ~charge:false kctx src first_obj ~offset:off;
      src.dirty <- true;
      Page_queues.activate kctx.Kctx.queues src;
      stats.s_cow_steals <- stats.s_cow_steals + 1
    in
    (* Copy [src] into [frame] as first_obj@off; drops the source's
       stale translations (sharers must refault through their own
       chains and see their own copy). *)
    let copy src frame ~off =
      Phys_mem.copy kctx.Kctx.mem ~src:src.frame ~dst:frame;
      incr copies;
      let fresh = Vm_page.insert kctx first_obj ~offset:off ~frame ~busy:false ~absent:false in
      fresh.dirty <- true;
      Page_queues.activate kctx.Kctx.queues fresh;
      if src.mappings <> [] then removed := true;
      Vm_page.remove_all_mappings ~charge:false kctx src;
      fresh
    in
    (* Resolve the faulting page first (it may block in alloc_frame). *)
    let primary =
      if can_steal first_obj page then begin
        via := "cow_steal";
        steal page ~off:first_off;
        Some page
      end
      else begin
        via := "cow_copy";
        let frame = Kctx.alloc_frame kctx ~privileged:false in
        (* The world may have shifted while we slept in alloc_frame:
           the source can be gone, or another faulter may have resolved
           this offset already; retry from the top if so. *)
        if
          page.busy
          || (not (Hashtbl.mem page.p_obj.obj_pages page.p_offset))
          || Hashtbl.mem first_obj.obj_pages first_off
        then begin
          Kctx.free_frame kctx frame;
          None
        end
        else Some (copy page frame ~off:first_off)
      end
    in
    match primary with
    | None -> resolve (tries + 1)
    | Some primary ->
      stats.s_cow_faults <- stats.s_cow_faults + 1;
      (* Clustered copy: sweep forward over adjacent pending-copy pages
         of the same record, stealing or copying each without further
         faults. Non-blocking allocation only — the window shrinks under
         memory pressure rather than sleeping mid-batch. *)
      let extras = ref [] in
      let n_extras = ref 0 in
      let window =
        if kctx.Kctx.enable_cow_cluster then
          min kctx.Kctx.cluster_pages (lk.Vm_map.lk_run / ps)
        else 1
      in
      (try
         for i = 1 to window - 1 do
           let off = first_off + (i * ps) in
           if Hashtbl.mem first_obj.obj_pages off then raise Exit;
           match Vm_object.lookup_chain first_obj ~offset:off with
           | Some (p, _, depth)
             when depth > 0 && (not p.busy) && (not p.absent) && (not p.p_error)
                  && p.page_lock = Prot.none ->
             if can_steal first_obj p then begin
               steal p ~off;
               extras := p :: !extras
             end
             else begin
               match Kctx.try_alloc_frame kctx ~privileged:false with
               | None -> raise Exit
               | Some frame -> extras := copy p frame ~off :: !extras
             end;
             incr n_extras
           | Some _ | None -> raise Exit
         done
       with Exit -> ());
      stats.s_cow_batched <- stats.s_cow_batched + !n_extras;
      Metrics.observe kctx.Kctx.cow_batch_hist (float_of_int (1 + !n_extras));
      (* The batch's single charge sites. *)
      if !copies > 0 then
        Kctx.charge kctx (float_of_int !copies *. kctx.Kctx.params.Machine.page_copy_us);
      if !removed then Kctx.charge kctx kctx.Kctx.params.Machine.map_op_us;
      (* The classic chain-length optimisation: if the frozen object
         below is now only ours, merge it away. *)
      Vm_object.collapse kctx first_obj;
      (* Hardware validation for the whole batch. The charges above may
         have slept, so re-check the map; if the entry moved on, fall
         back to validating the faulting page alone. *)
      (match Vm_map.lookup ~count:false map ~addr ~write with
      | Error _ -> ()
      | Ok lk2 when lk2.Vm_map.lk_obj == first_obj && lk2.Vm_map.lk_offset = first_off ->
        let base_vpn = addr / ps in
        let live pg = pg.p_obj == first_obj && not pg.busy in
        let batch =
          List.filter_map
            (fun pg ->
              if live pg then begin
                let vpn = base_vpn + ((pg.p_offset - first_off) / ps) in
                let prot =
                  hw_prot lk2.Vm_map.lk_entry_prot ~write_ok:lk2.Vm_map.lk_writable
                    ~page_lock:pg.page_lock
                in
                Vm_page.add_mapping pg pm ~vpn;
                Some (vpn, pg.frame, prot)
              end
              else None)
            (primary :: !extras)
        in
        if batch <> [] then begin
          Pmap.enter_batch pm batch;
          Kctx.charge kctx kctx.Kctx.params.Machine.map_op_us
        end;
        if !n_extras = 0 then burst_enter ()
      | Ok _ -> ignore (finish primary ~from_backing:false));
      Done
  (* Not resident anywhere in the chain, and a manager owns the data:
     issue a (possibly clustered) pager_data_request and wait. *)
  and slow_pager powner poffset tries =
    stats.s_slow_pager <- stats.s_slow_pager + 1;
    via := "pager";
    if dead_pager powner then
      (* The manager is gone: resolve locally and deterministically
         instead of requesting and waiting out a timeout. *)
      if anonymous_style powner then begin
        let frame = Kctx.alloc_frame kctx ~privileged:false in
        (* alloc_frame may sleep; someone may have resolved the page. *)
        if Hashtbl.mem powner.obj_pages poffset then Kctx.free_frame kctx frame
        else begin
          let page =
            Vm_page.insert kctx powner ~offset:poffset ~frame ~busy:false ~absent:false
          in
          stats.s_zero_fill <- stats.s_zero_fill + 1;
          stats.s_death_zero_fills <- stats.s_death_zero_fills + 1;
          Page_queues.activate kctx.Kctx.queues page
        end;
        (* Re-resolve: the page may sit in a backing object (COW due). *)
        resolve (tries + 1)
      end
      else begin
        stats.s_death_errors <- stats.s_death_errors + 1;
        Pager_error
      end
    else begin
      let window = if write then 1 else kctx.Kctx.cluster_pages in
      let page =
        Pager_client.request_cluster kctx powner ~offset:poffset
          ~desired_access:(if write then Prot.rw else Prot.read)
          ~window
      in
      if wait_while page (fun () -> page.busy) then resolve (tries + 1)
      else
        match policy with
        | Zero_fill_after _ when page.absent ->
          zero_fill_placeholder page;
          resolve (tries + 1)
        | Zero_fill_after _ | Wait_forever | Abort_after _ ->
          if page.absent then page.p_error <- true;
          Pager_error
    end
  (* Not resident, no manager anywhere in the chain: fresh zeroes. *)
  and slow_zero_fill first_obj first_off tries =
    via := "zero_fill";
    let frame = Kctx.alloc_frame kctx ~privileged:false in
    if Hashtbl.mem first_obj.obj_pages first_off then begin
      (* Someone beat us to it while we waited for memory. *)
      Kctx.free_frame kctx frame;
      resolve (tries + 1)
    end
    else begin
      let page =
        Vm_page.insert kctx first_obj ~offset:first_off ~frame ~busy:false ~absent:false
      in
      stats.s_zero_fill <- stats.s_zero_fill + 1;
      Page_queues.activate kctx.Kctx.queues page;
      finish page ~from_backing:false
    end
  in
  (* ---- dispatch ---------------------------------------------------- *)
  Trace.point tr ~subsystem:"vm" "map_lookup";
  let result =
    match Vm_map.lookup map ~addr ~write with
    | Error `Invalid_address -> Invalid_address
    | Error `Protection -> Protection_failure
    | Ok lk -> (
      (* Faults against entries created by a lazy message copy-out are the
         deferred half of the transfer: count them separately so the
         copyin-vs-materialization balance shows in the IPC stats. *)
      if lk.Vm_map.lk_from_copy then begin
        let is = kctx.Kctx.node.Mach_ipc.Transport.node_stats in
        is.Mach_ipc.Transport.s_lazy_copyout_faults <-
          is.Mach_ipc.Transport.s_lazy_copyout_faults + 1
      end;
      Trace.point tr ~subsystem:"vm" "shadow_walk";
      match Vm_object.lookup_chain lk.Vm_map.lk_obj ~offset:lk.Vm_map.lk_offset with
      | Some (page, _owner, depth)
        when (not page.busy) && (not page.absent) && (not page.p_error)
             && (not (lock_forbids page))
             && not (write && depth > 0) ->
        note_depth depth;
        fast_finish lk page ~from_backing:(depth > 0)
      | Some _ | None -> resolve 0)
  in
  (match result with
  | Done -> ()
  | Invalid_address -> via := "invalid_address"
  | Protection_failure -> via := "protection"
  | Pager_error -> via := "pager_error");
  Trace.span_close tr ~subsystem:"vm" ~label:!via span;
  Metrics.observe kctx.Kctx.fault_hist (Engine.now engine -. t_entry);
  result
