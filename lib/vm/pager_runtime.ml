(** The data-manager runtime: one framework under every pager.

    Each of our managers used to re-implement the same plumbing by hand
    on top of the raw protocol — a memory-object registry keyed by
    object port, splitting of multi-page [pager_data_request]s and
    run-shaped [pager_data_write]s, coalesced [pager_data_provided]
    replies, release accounting, port-death bookkeeping. This module
    owns all of it; a manager supplies only a {!policy} (backing-store
    read/write plus consistency decisions) and becomes a thin policy
    module, which is the paper's point: managers differ in policy, not
    in protocol plumbing.

    The runtime is transport-agnostic (the [send] function is injected)
    so it serves both user-level managers driven through
    [Memory_object_server] and the in-kernel default pager driving its
    own receive loop. *)

module Message = Mach_ipc.Message
module Port = Mach_ipc.Port
module Prot = Mach_hw.Prot

module Stats = struct
  (** Uniform per-pager counters, surfaced through E9/E10 and the
      conformance suite. *)
  type t = {
    mutable s_requests : int;  (** pager_data_request messages *)
    mutable s_pages_served : int;  (** pages sent in data_provided replies *)
    mutable s_unavailable : int;  (** pages declared data_unavailable *)
    mutable s_writes : int;  (** pager_data_write messages (one per run) *)
    mutable s_pages_written : int;  (** pages stored from data_writes *)
    mutable s_unlocks : int;  (** pager_data_unlock messages *)
    mutable s_dropped_replies : int;
        (** manager→kernel sends that failed (dead request port) *)
    mutable s_port_deaths : int;  (** kernel port deaths observed *)
  }

  let create () =
    {
      s_requests = 0;
      s_pages_served = 0;
      s_unavailable = 0;
      s_writes = 0;
      s_pages_written = 0;
      s_unlocks = 0;
      s_dropped_replies = 0;
      s_port_deaths = 0;
    }

  let reset s =
    s.s_requests <- 0;
    s.s_pages_served <- 0;
    s.s_unavailable <- 0;
    s.s_writes <- 0;
    s.s_pages_written <- 0;
    s.s_unlocks <- 0;
    s.s_dropped_replies <- 0;
    s.s_port_deaths <- 0

  let to_list s =
    [
      ("requests", s.s_requests);
      ("pages_served", s.s_pages_served);
      ("unavailable", s.s_unavailable);
      ("writes", s.s_writes);
      ("pages_written", s.s_pages_written);
      ("unlocks", s.s_unlocks);
      ("dropped_replies", s.s_dropped_replies);
      ("port_deaths", s.s_port_deaths);
    ]
end

(** One managed memory object: the registry entry plus per-object
    bookkeeping every manager needs. [o_data] is the policy's own
    state (file record, segment, region, …). *)
type 'o obj = {
  o_port : Message.port;
  o_id : int;
  mutable o_requests : Message.port list;  (** one request port per kernel *)
  mutable o_in_flight : int;  (** kernel calls currently being served *)
  o_data : 'o;
}

(** Per-page answer from a policy's read callback. [Defer] means the
    policy replied (or queued a reply) itself — consistency managers
    like netmem grant pages on their own schedule. *)
type page_reply = Data of bytes | Unavailable | Defer

(** Per-page answer to an unlock: lift the lock, impose a different
    one, or let the policy resolve it asynchronously. *)
type unlock_reply = Grant | Relock of Prot.t | Defer_unlock

type 'o t = {
  rt_name : string;
  rt_page_size : int;
  rt_send : Message.t -> (unit, unit) result;
  rt_stats : Stats.t;
  rt_objects : (int, 'o obj) Hashtbl.t;
  mutable rt_policy : 'o policy;
}

and 'o policy = {
  p_read : 'o t -> 'o obj -> request:Message.port -> page:int -> desired_access:Prot.t -> page_reply;
      (** Produce one page (index in pages, not bytes). Chunks must be
          page-sized except a trailing partial at end-of-object. *)
  p_write : 'o t -> 'o obj -> page:int -> data:bytes -> unit;
      (** Persist one page of a data_write run. *)
  p_prepare_write : 'o t -> 'o obj -> offset:int -> data:bytes -> unit;
      (** Run once before the per-page writes of a data_write — e.g.
          camelot's single WAL force for the whole run. *)
  p_unlock : 'o t -> 'o obj -> request:Message.port -> page:int -> desired_access:Prot.t -> unlock_reply;
  p_reshape : 'o t -> 'o obj -> first:int -> npages:int -> int * int;
      (** Policy control over how much of a request is honored
          ("advanced managers may provide more data than requested" —
          or less, like copy-on-reference migration). *)
  p_init : 'o t -> 'o obj -> request:Message.port -> unit;
  p_lock_completed :
    'o t -> 'o obj -> request:Message.port option -> offset:int -> length:int -> unit;
  p_death : 'o t -> 'o obj -> Message.port -> unit;
      (** A kernel's request port (or the object port itself) died. *)
  p_may_cache : bool option;  (** send pager_cache on init *)
}

let default_policy =
  {
    p_read = (fun _ _ ~request:_ ~page:_ ~desired_access:_ -> Unavailable);
    p_write = (fun _ _ ~page:_ ~data:_ -> ());
    p_prepare_write = (fun _ _ ~offset:_ ~data:_ -> ());
    p_unlock = (fun _ _ ~request:_ ~page:_ ~desired_access:_ -> Grant);
    p_reshape = (fun _ _ ~first ~npages -> (first, npages));
    p_init = (fun _ _ ~request:_ -> ());
    p_lock_completed = (fun _ _ ~request:_ ~offset:_ ~length:_ -> ());
    p_death = (fun _ _ _ -> ());
    p_may_cache = None;
  }

let create ~name ~page_size ~send policy =
  {
    rt_name = name;
    rt_page_size = page_size;
    rt_send = send;
    rt_stats = Stats.create ();
    rt_objects = Hashtbl.create 32;
    rt_policy = policy;
  }

let name t = t.rt_name
let page_size t = t.rt_page_size
let stats t = t.rt_stats
let set_policy t policy = t.rt_policy <- policy

(* --- registry ----------------------------------------------------------- *)

let register t ~memory_object o_data =
  let o =
    {
      o_port = memory_object;
      o_id = Port.id memory_object;
      o_requests = [];
      o_in_flight = 0;
      o_data;
    }
  in
  Hashtbl.replace t.rt_objects o.o_id o;
  o

let unregister t o = Hashtbl.remove t.rt_objects o.o_id
let find t port = Hashtbl.find_opt t.rt_objects (Port.id port)
let find_data t port = Option.map (fun o -> o.o_data) (find t port)
let objects t = Hashtbl.length t.rt_objects
let iter_objects t f = Hashtbl.iter (fun _ o -> f o) t.rt_objects
let requests o = o.o_requests

let add_request o request =
  if not (List.exists (fun r -> Port.id r = Port.id request) o.o_requests) then
    o.o_requests <- request :: o.o_requests

let note_dropped_reply t =
  t.rt_stats.Stats.s_dropped_replies <- t.rt_stats.Stats.s_dropped_replies + 1

(* --- manager→kernel calls (Table 3-6), with drop accounting ------------- *)

let send_m2k t call ~request =
  match t.rt_send (Pager_iface.encode_m2k call ~request) with
  | Ok () -> ()
  | Error () -> note_dropped_reply t

let pages_in t len = (len + t.rt_page_size - 1) / t.rt_page_size

let data_provided t ~request ~offset ~data ~lock_value =
  t.rt_stats.Stats.s_pages_served <-
    t.rt_stats.Stats.s_pages_served + pages_in t (Bytes.length data);
  send_m2k t (Pager_iface.Data_provided { offset; data; lock_value }) ~request

let data_unavailable t ~request ~offset ~size =
  t.rt_stats.Stats.s_unavailable <- t.rt_stats.Stats.s_unavailable + pages_in t size;
  send_m2k t (Pager_iface.Data_unavailable { offset; size }) ~request

let data_lock t ~request ~offset ~length ~lock_value =
  send_m2k t (Pager_iface.Data_lock { offset; length; lock_value }) ~request

let flush_request t ~request ~offset ~length =
  send_m2k t (Pager_iface.Flush_request { offset; length }) ~request

let clean_request t ~request ~offset ~length =
  send_m2k t (Pager_iface.Clean_request { offset; length }) ~request

let cache t ~request ~may_cache = send_m2k t (Pager_iface.Cache { may_cache }) ~request

let release_write t ~request ~write_id =
  send_m2k t (Pager_iface.Release_write { write_id }) ~request

(* --- kernel→manager dispatch (Table 3-5) -------------------------------- *)

let handle_init t ~memory_object ~request =
  match find t memory_object with
  | None -> ()
  | Some o ->
    add_request o request;
    (match t.rt_policy.p_may_cache with
    | Some may_cache -> cache t ~request ~may_cache
    | None -> ());
    t.rt_policy.p_init t o ~request

(* Walk the (reshaped) range page by page, coalescing adjacent [Data]
   chunks into one data_provided and adjacent holes into one
   data_unavailable — reply traffic stays proportional to runs, not
   pages. A sub-page chunk can only be a trailing partial, so it closes
   its run. [Defer] flushes both: the policy owns that page's reply. *)
let handle_data_request t ~memory_object ~request ~offset ~length ~desired_access =
  match find t memory_object with
  | None -> ()
  | Some o ->
    t.rt_stats.Stats.s_requests <- t.rt_stats.Stats.s_requests + 1;
    o.o_in_flight <- o.o_in_flight + 1;
    let ps = t.rt_page_size in
    let first, npages =
      t.rt_policy.p_reshape t o ~first:(offset / ps) ~npages:(max 1 ((length + ps - 1) / ps))
    in
    let run = ref [] and run_start = ref 0 in
    let hole_start = ref 0 and hole_pages = ref 0 in
    let flush_run () =
      match !run with
      | [] -> ()
      | chunks ->
        data_provided t ~request ~offset:(!run_start * ps)
          ~data:(Bytes.concat Bytes.empty (List.rev chunks))
          ~lock_value:Prot.none;
        run := []
    in
    let flush_hole () =
      if !hole_pages > 0 then begin
        data_unavailable t ~request ~offset:(!hole_start * ps) ~size:(!hole_pages * ps);
        hole_pages := 0
      end
    in
    for i = 0 to npages - 1 do
      let page = first + i in
      match t.rt_policy.p_read t o ~request ~page ~desired_access with
      | Data chunk ->
        flush_hole ();
        if !run = [] then run_start := page;
        run := chunk :: !run;
        if Bytes.length chunk < ps then flush_run ()
      | Unavailable ->
        flush_run ();
        if !hole_pages = 0 then hole_start := page;
        incr hole_pages
      | Defer ->
        flush_run ();
        flush_hole ()
    done;
    flush_run ();
    flush_hole ();
    o.o_in_flight <- max 0 (o.o_in_flight - 1)

(* A write may carry a whole run of adjacent pages: prepare once (WAL
   force and the like), store per page, release once. An unknown object
   (terminated while the write was in flight) still releases — the data
   is dead, but the kernel's holding frames must come back. *)
let handle_data_write t ~memory_object ~offset ~data ~release =
  (match find t memory_object with
  | None -> ()
  | Some o ->
    t.rt_stats.Stats.s_writes <- t.rt_stats.Stats.s_writes + 1;
    o.o_in_flight <- o.o_in_flight + 1;
    t.rt_policy.p_prepare_write t o ~offset ~data;
    let ps = t.rt_page_size in
    let npages = max 1 ((Bytes.length data + ps - 1) / ps) in
    for i = 0 to npages - 1 do
      let len = min ps (Bytes.length data - (i * ps)) in
      let chunk = if len <= 0 then Bytes.empty else Bytes.sub data (i * ps) len in
      t.rt_policy.p_write t o ~page:((offset / ps) + i) ~data:chunk
    done;
    t.rt_stats.Stats.s_pages_written <- t.rt_stats.Stats.s_pages_written + npages;
    o.o_in_flight <- max 0 (o.o_in_flight - 1));
  release ()

(* Per-page unlock resolution, coalescing adjacent pages that resolve
   to the same lock value into one data_lock. *)
let handle_data_unlock t ~memory_object ~request ~offset ~length ~desired_access =
  match find t memory_object with
  | None -> ()
  | Some o ->
    t.rt_stats.Stats.s_unlocks <- t.rt_stats.Stats.s_unlocks + 1;
    o.o_in_flight <- o.o_in_flight + 1;
    let ps = t.rt_page_size in
    let first = offset / ps in
    let last = (offset + max 1 length - 1) / ps in
    let pending = ref None in
    let flush () =
      match !pending with
      | None -> ()
      | Some (start, n, lock_value) ->
        data_lock t ~request ~offset:(start * ps) ~length:(n * ps) ~lock_value;
        pending := None
    in
    for page = first to last do
      match t.rt_policy.p_unlock t o ~request ~page ~desired_access with
      | Defer_unlock -> flush ()
      | (Grant | Relock _) as r -> (
        let lv = match r with Relock v -> v | Grant | Defer_unlock -> Prot.none in
        match !pending with
        | Some (start, n, prev) when Prot.equal prev lv && start + n = page ->
          pending := Some (start, n + 1, lv)
        | Some _ ->
          flush ();
          pending := Some (page, 1, lv)
        | None -> pending := Some (page, 1, lv))
    done;
    flush ();
    o.o_in_flight <- max 0 (o.o_in_flight - 1)

let handle_lock_completed t ~memory_object ~request ~offset ~length =
  match find t memory_object with
  | None -> ()
  | Some o -> t.rt_policy.p_lock_completed t o ~request ~offset ~length

(* A port died: either a kernel's request port (that kernel is gone
   from every object that registered it) or a memory-object port itself
   (the object is dead). Collect first — [p_death] may unregister. *)
let handle_port_death t port =
  let pid = Port.id port in
  let victims =
    Hashtbl.fold
      (fun _ o acc ->
        if o.o_id = pid || List.exists (fun r -> Port.id r = pid) o.o_requests then o :: acc
        else acc)
      t.rt_objects []
  in
  if victims <> [] then
    t.rt_stats.Stats.s_port_deaths <- t.rt_stats.Stats.s_port_deaths + 1;
  List.iter
    (fun o ->
      o.o_requests <- List.filter (fun r -> Port.id r <> pid) o.o_requests;
      t.rt_policy.p_death t o port;
      if o.o_id = pid then unregister t o)
    victims

(* --- block-boundary splitting helpers ------------------------------------
   Shared by every disk-backed policy (previously copied between
   minimal_fs and camelot): map a byte range onto fixed-size backing
   blocks, with read-merge-write for partial spans. *)
module Blocks = struct
  (* Call [f ~index ~block_off ~buf_off ~len] for each block-aligned
     span of [offset, offset+len). *)
  let iter_spans ~block_size ~offset ~len f =
    let pos = ref 0 in
    while !pos < len do
      let off = offset + !pos in
      let index = off / block_size in
      let block_off = off mod block_size in
      let span = min (len - !pos) (block_size - block_off) in
      f ~index ~block_off ~buf_off:!pos ~len:span;
      pos := !pos + span
    done

  (* Assemble [len] bytes starting at [offset]; blocks [read] does not
     have stay zero. *)
  let read_range ~block_size ~read ~offset ~len =
    let out = Bytes.make len '\000' in
    iter_spans ~block_size ~offset ~len (fun ~index ~block_off ~buf_off ~len ->
        match read ~index with
        | Some b -> Bytes.blit b block_off out buf_off len
        | None -> ());
    out

  (* Write [data] at [offset]; partial spans merge over what is stored
     (or zeroes) so neighbors within the block survive. *)
  let write_range ~block_size ~read ~write ~offset ~data =
    iter_spans ~block_size ~offset ~len:(Bytes.length data)
      (fun ~index ~block_off ~buf_off ~len ->
        if len = block_size then write ~index (Bytes.sub data buf_off len)
        else begin
          let b =
            match read ~index with Some b -> b | None -> Bytes.make block_size '\000'
          in
          Bytes.blit data buf_off b block_off len;
          write ~index b
        end)
end
