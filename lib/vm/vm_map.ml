open Vm_types
module Prot = Mach_hw.Prot
module Pmap = Mach_hw.Pmap
module Machine = Mach_hw.Machine
module Transport = Mach_ipc.Transport

(* Entries are kept in a sorted array (by va_start, non-overlapping) so
   the fault-path lookup is a binary search instead of the historical
   linear list walk. A per-map "last hit" hint short-circuits the search
   entirely for the common run of faults against one region (the BSD
   vm_map hint). Entry va_start never changes after insertion (clip only
   shrinks va_end and inserts a fresh tail), so sortedness is preserved
   by construction; structural changes go through [set_entries], which
   is also the single place the hint gets invalidated. *)
type t = {
  map_id : int;
  kctx : Kctx.t;
  map_pmap : Pmap.t option;
  mutable map_entries : entry array; (* sorted by va_start, non-overlapping *)
  mutable map_hint : entry option; (* last entry a lookup resolved to *)
  mutable mref : int; (* sharing-map references *)
  va_limit : int;
}

and entry = {
  mutable va_start : int;
  mutable va_end : int;
  mutable protection : Prot.t;
  mutable max_protection : Prot.t;
  mutable inheritance : inheritance;
  mutable backing : entry_backing;
}

and entry_backing = Direct of direct | Shared of { share_map : t; sh_offset : int }

and direct = {
  mutable d_obj : obj;
  mutable d_offset : int;
  mutable needs_copy : bool;
  d_from_copy : bool;
}

type region_info = {
  ri_start : int;
  ri_size : int;
  ri_protection : Prot.t;
  ri_max_protection : Prot.t;
  ri_inheritance : inheritance;
  ri_object_id : int option;
  ri_shared : bool;
  ri_name_port : port option;
}

exception No_space
exception Bad_address of int

let next_map_id = ref 0

let create kctx ~pmap ?(va_limit = 1 lsl 40) () =
  incr next_map_id;
  {
    map_id = !next_map_id;
    kctx;
    map_pmap = pmap;
    map_entries = [||];
    map_hint = None;
    mref = 1;
    va_limit;
  }

let pmap t = t.map_pmap
let kctx t = t.kctx
let entries t = Array.to_list t.map_entries
let page_size t = t.kctx.Kctx.page_size
let size t = Array.fold_left (fun acc e -> acc + (e.va_end - e.va_start)) 0 t.map_entries

let check_invariants t =
  let ps = page_size t in
  let rec go last = function
    | [] -> Ok ()
    | e :: rest ->
      if e.va_start >= e.va_end then Error (Printf.sprintf "empty entry at %#x" e.va_start)
      else if e.va_start < last then Error (Printf.sprintf "overlap at %#x" e.va_start)
      else if e.va_start land (ps - 1) <> 0 || e.va_end land (ps - 1) <> 0 then
        Error (Printf.sprintf "unaligned entry at %#x" e.va_start)
      else if not (Prot.subset e.protection e.max_protection) then
        Error (Printf.sprintf "protection exceeds max at %#x" e.va_start)
      else begin
        match e.backing with
        | Direct d ->
          if d.d_offset land (ps - 1) <> 0 then
            Error (Printf.sprintf "unaligned object offset at %#x" e.va_start)
          else if d.d_obj.ref_count <= 0 then
            Error (Printf.sprintf "dead object reference at %#x" e.va_start)
          else go e.va_end rest
        | Shared s ->
          if s.share_map.mref <= 0 then Error (Printf.sprintf "dead share map at %#x" e.va_start)
          else go e.va_end rest
      end
  in
  match go 0 (entries t) with
  | Error _ as e -> e
  | Ok () -> (
    (* The hint must always reference a live entry of this map. *)
    match t.map_hint with
    | None -> Ok ()
    | Some h ->
      if Array.exists (fun e -> e == h) t.map_entries then Ok ()
      else Error "hint references an entry not in the map")

(* ---- entry array surgery ----------------------------------------------- *)

(* Replace the entry set wholesale; any removal invalidates the hint
   (a hinted lookup must never resolve to a detached entry). *)
let set_entries t es =
  t.map_entries <- es;
  (match t.map_hint with
  | Some h when not (Array.exists (fun e -> e == h) es) -> t.map_hint <- None
  | Some _ | None -> ())

(* Index of the last entry with va_start <= va, or -1. *)
let find_slot t va =
  let es = t.map_entries in
  let lo = ref 0 and hi = ref (Array.length es - 1) and best = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if es.(mid).va_start <= va then begin
      best := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !best

let covers e va = va >= e.va_start && va < e.va_end

let find_entry ?(count = false) t va =
  let stats = t.kctx.Kctx.stats in
  match t.map_hint with
  | Some h when covers h va ->
    if count then stats.s_hint_hits <- stats.s_hint_hits + 1;
    Some h
  | _ ->
    if count then stats.s_hint_misses <- stats.s_hint_misses + 1;
    let i = find_slot t va in
    if i < 0 then None
    else
      let e = t.map_entries.(i) in
      if covers e va then begin
        t.map_hint <- Some e;
        Some e
      end
      else None

let insert_entry t e =
  let es = t.map_entries in
  let n = Array.length es in
  let pos = ref n in
  (* Binary search for the insertion point (first entry starting after e). *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if e.va_start < es.(mid).va_start then begin
      pos := mid;
      hi := mid - 1
    end
    else lo := mid + 1
  done;
  let out = Array.make (n + 1) e in
  Array.blit es 0 out 0 !pos;
  Array.blit es !pos out (!pos + 1) (n - !pos);
  t.map_entries <- out

(* Split [e] so that [addr] becomes an entry boundary. *)
let clip t addr =
  match find_entry t addr with
  | None -> ()
  | Some e when e.va_start = addr -> ()
  | Some e ->
    let tail_backing =
      match e.backing with
      | Direct d ->
        d.d_obj.ref_count <- d.d_obj.ref_count + 1;
        Direct
          {
            d_obj = d.d_obj;
            d_offset = d.d_offset + (addr - e.va_start);
            needs_copy = d.needs_copy;
            d_from_copy = d.d_from_copy;
          }
      | Shared s ->
        s.share_map.mref <- s.share_map.mref + 1;
        Shared { share_map = s.share_map; sh_offset = s.sh_offset + (addr - e.va_start) }
    in
    let tail =
      {
        va_start = addr;
        va_end = e.va_end;
        protection = e.protection;
        max_protection = e.max_protection;
        inheritance = e.inheritance;
        backing = tail_backing;
      }
    in
    e.va_end <- addr;
    insert_entry t tail

(* All entries intersecting [lo, hi), clipped exactly to the range. *)
let entries_in_range t ~lo ~hi =
  clip t lo;
  clip t hi;
  Array.fold_right
    (fun e acc ->
      if e.va_start >= lo && e.va_end <= hi && e.va_start < hi && e.va_end > lo then e :: acc
      else acc)
    t.map_entries []

(* The range must be fully mapped; returns entries in order. *)
let entries_covering t ~lo ~hi =
  let es = entries_in_range t ~lo ~hi in
  let rec check cursor = function
    | [] -> if cursor = hi then () else raise (Bad_address cursor)
    | e :: rest ->
      if e.va_start <> cursor then raise (Bad_address cursor) else check e.va_end rest
  in
  check lo es;
  es

(* ---- hardware (pmap) bookkeeping -------------------------------------- *)

(* Iterate resident pages reachable through a direct record for object
   offsets [lo_off, lo_off+span); [f] receives the page and the offset
   relative to lo_off. Walks the whole shadow chain: pages from backing
   objects may be mapped read-only in our pmap. *)
let iter_chain_pages d ~lo_off ~span f =
  let rec walk obj delta =
    Hashtbl.iter
      (fun off page ->
        let top_off = off - delta in
        if top_off >= lo_off && top_off < lo_off + span then f page (top_off - lo_off))
      obj.obj_pages;
    match obj.backing with
    | Some { back_obj; back_offset } -> walk back_obj (delta + back_offset)
    | None -> ()
  in
  walk d.d_obj 0

(* Apply [f page rel_off] to resident pages under [e] for the address
   range [lo, hi) (which must lie within the entry); rel_off is relative
   to lo. *)
let iter_entry_pages e ~lo ~hi f =
  let span = hi - lo in
  match e.backing with
  | Direct d -> iter_chain_pages d ~lo_off:(d.d_offset + (lo - e.va_start)) ~span f
  | Shared s ->
    let sh_lo = s.sh_offset + (lo - e.va_start) in
    let sh_hi = sh_lo + span in
    Array.iter
      (fun se ->
        let olo = max se.va_start sh_lo and ohi = min se.va_end sh_hi in
        if olo < ohi then
          match se.backing with
          | Direct d ->
            iter_chain_pages d ~lo_off:(d.d_offset + (olo - se.va_start)) ~span:(ohi - olo)
              (fun page rel -> f page (olo - sh_lo + rel))
          | Shared _ -> assert false (* sharing maps are single-level *))
      s.share_map.map_entries

(* Remove every hardware translation this map holds for [lo, hi) of
   entry [e], fixing the pages' reverse-mapping lists. *)
let drop_hw t e ~lo ~hi =
  match t.map_pmap with
  | None -> ()
  | Some pm ->
    let ps = page_size t in
    iter_entry_pages e ~lo ~hi (fun page rel ->
        let vpn = (lo + rel) / ps in
        Vm_page.drop_mapping page pm ~vpn);
    Pmap.remove_range pm ~lo:(lo / ps) ~hi:((hi / ps) - 1)

(* Reduce hardware protections in [lo, hi) to at most [prot]. *)
let limit_hw t e ~lo ~hi prot =
  match t.map_pmap with
  | None -> ()
  | Some pm ->
    let ps = page_size t in
    iter_entry_pages e ~lo ~hi (fun page rel ->
        let vpn = (lo + rel) / ps in
        match Pmap.lookup pm ~vpn with
        | Some (_, cur) -> Pmap.protect pm ~vpn ~prot:(Prot.inter cur prot)
        | None -> ignore page)

(* Write-protect every mapping (in all pmaps) of resident pages backing
   this direct record: the next write anywhere faults and copies.
   The sweep is batched: mappings are gathered per pmap and
   write-protected as contiguous vpn runs through Pmap.protect_range,
   under one map-op charge for the whole record — fork/copyin freeze
   cost is O(entries), not O(pages x mappings). *)
let freeze_chain kctx d ~lo_off ~span =
  let groups = ref [] in
  let add pmap vpn =
    match List.find_opt (fun (pm, _) -> pm == pmap) !groups with
    | Some (_, vpns) -> vpns := vpn :: !vpns
    | None -> groups := (pmap, ref [ vpn ]) :: !groups
  in
  iter_chain_pages d ~lo_off ~span (fun page _ ->
      List.iter (fun (pm, vpn) -> add pm vpn) page.mappings);
  List.iter
    (fun (pm, vpns) ->
      let rec runs = function
        | [] -> ()
        | v :: rest ->
          let rec extend last = function
            | v' :: rest' when v' = last + 1 -> extend v' rest'
            | rest' -> (last, rest')
          in
          let hi, rest' = extend v rest in
          Pmap.protect_range pm ~lo:v ~hi ~prot:Prot.rx;
          runs rest'
      in
      runs (List.sort_uniq compare !vpns))
    !groups;
  if !groups <> [] then Kctx.charge kctx kctx.Kctx.params.Machine.map_op_us

(* ---- deallocation ------------------------------------------------------ *)

let release_entry t e =
  drop_hw t e ~lo:e.va_start ~hi:e.va_end;
  match e.backing with
  | Direct d -> Vm_object.deallocate t.kctx d.d_obj
  | Shared s ->
    s.share_map.mref <- s.share_map.mref - 1;
    if s.share_map.mref = 0 then begin
      Array.iter
        (fun se ->
          match se.backing with
          | Direct d -> Vm_object.deallocate t.kctx d.d_obj
          | Shared _ -> assert false)
        s.share_map.map_entries;
      set_entries s.share_map [||]
    end

let deallocate t ~addr ~size =
  let ps = page_size t in
  let lo = addr land lnot (ps - 1) in
  let hi = (addr + size + ps - 1) land lnot (ps - 1) in
  let doomed = entries_in_range t ~lo ~hi in
  set_entries t
    (Array.of_list (List.filter (fun e -> not (List.memq e doomed)) (entries t)));
  List.iter (release_entry t) doomed

let destroy t =
  let doomed = entries t in
  set_entries t [||];
  List.iter (release_entry t) doomed

(* ---- allocation -------------------------------------------------------- *)

let range_free t ~lo ~hi =
  not (Array.exists (fun e -> e.va_start < hi && e.va_end > lo) t.map_entries)

let find_space t ~size =
  let ps = page_size t in
  let rec go cursor = function
    | [] -> if cursor + size <= t.va_limit then cursor else raise No_space
    | e :: rest -> if cursor + size <= e.va_start then cursor else go e.va_end rest
  in
  go ps (entries t)

let pick_address t ?addr ~size ~anywhere () =
  let ps = page_size t in
  if size <= 0 then invalid_arg "Vm_map: size must be positive";
  let size = (size + ps - 1) land lnot (ps - 1) in
  let base =
    match (addr, anywhere) with
    | Some a, false ->
      let a = a land lnot (ps - 1) in
      if not (range_free t ~lo:a ~hi:(a + size)) then raise No_space;
      a
    | Some a, true ->
      let a = a land lnot (ps - 1) in
      if range_free t ~lo:a ~hi:(a + size) then a else find_space t ~size
    | None, _ -> find_space t ~size
  in
  (base, size)

let allocate_with_object t ?addr ~size ~anywhere ~obj ~offset ?(needs_copy = false)
    ?(from_copy = false) ?(protection = Prot.rw) ?(max_protection = Prot.all) () =
  let base, size = pick_address t ?addr ~size ~anywhere () in
  insert_entry t
    {
      va_start = base;
      va_end = base + size;
      protection;
      max_protection;
      inheritance = Inherit_copy;
      backing = Direct { d_obj = obj; d_offset = offset; needs_copy; d_from_copy = from_copy };
    };
  base

let allocate t ?addr ~size ~anywhere () =
  let obj = Vm_object.create_anonymous t.kctx ~size in
  allocate_with_object t ?addr ~size ~anywhere ~obj ~offset:0 ()

(* ---- attributes -------------------------------------------------------- *)

let protect t ~addr ~size ~set_max prot =
  let ps = page_size t in
  let lo = addr land lnot (ps - 1) in
  let hi = (addr + size + ps - 1) land lnot (ps - 1) in
  let es = entries_covering t ~lo ~hi in
  List.iter
    (fun e ->
      if set_max then begin
        e.max_protection <- prot;
        e.protection <- Prot.inter e.protection prot
      end
      else begin
        if not (Prot.subset prot e.max_protection) then raise (Bad_address e.va_start);
        e.protection <- prot
      end;
      limit_hw t e ~lo:e.va_start ~hi:e.va_end e.protection)
    es

let set_inheritance t ~addr ~size inh =
  let ps = page_size t in
  let lo = addr land lnot (ps - 1) in
  let hi = (addr + size + ps - 1) land lnot (ps - 1) in
  let es = entries_covering t ~lo ~hi in
  List.iter (fun e -> e.inheritance <- inh) es

let regions t =
  List.map
    (fun e ->
      let obj_id, name_port, shared =
        match e.backing with
        | Direct d ->
          let name =
            match d.d_obj.pager with Pager p -> p.name_port | No_pager -> None
          in
          (Some d.d_obj.obj_id, name, false)
        | Shared _ -> (None, None, true)
      in
      {
        ri_start = e.va_start;
        ri_size = e.va_end - e.va_start;
        ri_protection = e.protection;
        ri_max_protection = e.max_protection;
        ri_inheritance = e.inheritance;
        ri_object_id = obj_id;
        ri_shared = shared;
        ri_name_port = name_port;
      })
    (entries t)

(* ---- lookup (fault path) ---------------------------------------------- *)

type lookup = {
  lk_entry_prot : Prot.t;
  lk_obj : obj;
  lk_offset : int;
  lk_writable : bool;
  lk_from_copy : bool;
  lk_run : int;
      (* bytes from lk_offset to the end of the backing record: the
         faulted page plus the forward window the copy engine may
         resolve in the same fault *)
}

(* Resolve a pending copy-on-write by interposing a shadow object over
   the direct record; the old object becomes the frozen common ancestor
   (§5.5). [span] is the extent the record covers. *)
let resolve_copy kctx d ~span =
  let shadow = Vm_object.create_shadow kctx ~backs:d.d_obj ~offset:d.d_offset ~size:span in
  (* The record's reference moves from the old object to the shadow:
     create_shadow took its own reference on the old object. *)
  Vm_object.deallocate kctx d.d_obj;
  d.d_obj <- shadow;
  d.d_offset <- 0;
  d.needs_copy <- false

let lookup ?(count = true) t ~addr ~write =
  match find_entry ~count t addr with
  | None -> Error `Invalid_address
  | Some e ->
    let needed = if write then Prot.write else Prot.read in
    if not (Prot.subset needed e.protection) then Error `Protection
    else begin
      let resolve d ~rec_base ~span =
        (* [rec_base]: the virtual address corresponding to d_offset's
           start; [span]: extent of the record. *)
        if write && d.needs_copy then resolve_copy t.kctx d ~span;
        let offset = d.d_offset + (addr - rec_base) in
        let lk_offset = t.kctx.Kctx.page_size * (offset / t.kctx.Kctx.page_size) in
        Ok
          {
            lk_entry_prot = e.protection;
            lk_obj = d.d_obj;
            lk_offset;
            lk_writable = Prot.can_write e.protection && not d.needs_copy;
            lk_from_copy = d.d_from_copy;
            lk_run = d.d_offset + span - lk_offset;
          }
      in
      match e.backing with
      | Direct d -> resolve d ~rec_base:e.va_start ~span:(e.va_end - e.va_start)
      | Shared s -> (
        let sh_addr = s.sh_offset + (addr - e.va_start) in
        match find_entry s.share_map sh_addr with
        | None -> Error `Invalid_address
        | Some se -> (
          match se.backing with
          | Direct d ->
            (* Translate so that rec_base maps [addr] onto the right
               sub-entry offset. *)
            let rec_base = addr - (sh_addr - se.va_start) in
            resolve d ~rec_base ~span:(se.va_end - se.va_start)
          | Shared _ -> assert false))
    end

(* ---- fork and region copy ---------------------------------------------- *)

(* Promote a direct entry to a sharing-map entry (first Share fork). *)
let promote_to_share t e =
  match e.backing with
  | Shared _ -> ()
  | Direct d ->
    let sm = create t.kctx ~pmap:None ~va_limit:t.va_limit () in
    let span = e.va_end - e.va_start in
    sm.map_entries <-
      [|
        {
          va_start = 0;
          va_end = span;
          protection = Prot.all;
          max_protection = Prot.all;
          inheritance = Inherit_share;
          backing = Direct d;
        };
      |];
    e.backing <- Shared { share_map = sm; sh_offset = 0 }

(* Set up symmetric copy-on-write of a direct record for a new holder:
   returns the (obj, offset) the copy should reference. *)
let cow_share kctx d ~lo_off ~span =
  d.d_obj.ref_count <- d.d_obj.ref_count + 1;
  d.needs_copy <- true;
  freeze_chain kctx d ~lo_off ~span;
  (d.d_obj, lo_off)

(* Build the copy-entries for address range [lo, hi) of entry [e],
   calling [emit] with (rel_addr, span, obj, offset) pieces. *)
let copy_pieces t e ~lo ~hi emit =
  let kctx = t.kctx in
  match e.backing with
  | Direct d ->
    let lo_off = d.d_offset + (lo - e.va_start) in
    let obj, offset = cow_share kctx d ~lo_off ~span:(hi - lo) in
    emit ~rel:0 ~span:(hi - lo) ~obj ~offset
  | Shared s ->
    let sh_lo = s.sh_offset + (lo - e.va_start) in
    let sh_hi = sh_lo + (hi - lo) in
    let sub = entries_covering s.share_map ~lo:sh_lo ~hi:sh_hi in
    List.iter
      (fun se ->
        match se.backing with
        | Direct d ->
          let lo_off = d.d_offset + (max se.va_start sh_lo - se.va_start) in
          let span = min se.va_end sh_hi - max se.va_start sh_lo in
          let obj, offset = cow_share kctx d ~lo_off ~span in
          emit ~rel:(max se.va_start sh_lo - sh_lo) ~span ~obj ~offset
        | Shared _ -> assert false)
      sub

let fork t ~child_pmap =
  let child = create t.kctx ~pmap:child_pmap ~va_limit:t.va_limit () in
  Array.iter
    (fun e ->
      match e.inheritance with
      | Inherit_none -> ()
      | Inherit_share ->
        promote_to_share t e;
        (match e.backing with
        | Shared s ->
          s.share_map.mref <- s.share_map.mref + 1;
          insert_entry child
            {
              va_start = e.va_start;
              va_end = e.va_end;
              protection = e.protection;
              max_protection = e.max_protection;
              inheritance = e.inheritance;
              backing = Shared { share_map = s.share_map; sh_offset = s.sh_offset };
            }
        | Direct _ -> assert false)
      | Inherit_copy ->
        copy_pieces t e ~lo:e.va_start ~hi:e.va_end (fun ~rel ~span ~obj ~offset ->
            insert_entry child
              {
                va_start = e.va_start + rel;
                va_end = e.va_start + rel + span;
                protection = e.protection;
                max_protection = e.max_protection;
                inheritance = e.inheritance;
                backing =
                  Direct { d_obj = obj; d_offset = offset; needs_copy = true; d_from_copy = false };
              }))
    t.map_entries;
  child

(* ---- message copy objects (vm_map_copyin / vm_map_copyout) ------------ *)

type copy_piece = { cpc_rel : int; cpc_span : int; cpc_obj : obj; cpc_offset : int }

type vm_copy = {
  vc_kctx : Kctx.t;
  vc_size : int;
  vc_pieces : copy_piece list;
  mutable vc_consumed : bool;
}

type Mach_ipc.Message.copy_payload += Vm_copy_handle of vm_copy

let copyin t ~addr ~size =
  let ps = page_size t in
  let kctx = t.kctx in
  let lo = addr land lnot (ps - 1) in
  let hi = (addr + size + ps - 1) land lnot (ps - 1) in
  let es = entries_covering t ~lo ~hi in
  let pieces = ref [] in
  List.iter
    (fun e ->
      (* cow_share (inside copy_pieces) takes an object reference for
         the copy object and COW-protects the sender's entries: later
         sender writes shadow, leaving the snapshot untouched. *)
      copy_pieces t e ~lo:e.va_start ~hi:e.va_end (fun ~rel ~span ~obj ~offset ->
          pieces :=
            { cpc_rel = e.va_start - lo + rel; cpc_span = span; cpc_obj = obj; cpc_offset = offset }
            :: !pieces))
    es;
  let stats = kctx.Kctx.node.Transport.node_stats in
  stats.Transport.s_copyins <- stats.Transport.s_copyins + 1;
  (* Write-protecting the source is one map op per page: O(pages) map
     work instead of O(bytes) copying. *)
  Kctx.charge kctx (float_of_int ((hi - lo) / ps) *. kctx.Kctx.params.Machine.map_op_us);
  { vc_kctx = kctx; vc_size = hi - lo; vc_pieces = List.rev !pieces; vc_consumed = false }

let copyout t copy ?addr () =
  if copy.vc_kctx != t.kctx then invalid_arg "Vm_map.copyout: copy object from another kernel";
  if copy.vc_consumed then invalid_arg "Vm_map.copyout: copy object already consumed";
  copy.vc_consumed <- true;
  let base, _ = pick_address t ?addr ~size:copy.vc_size ~anywhere:true () in
  List.iter
    (fun p ->
      (* The copy object's reference on each piece moves to the new
         entry; no data is touched — pages materialize lazily through
         the fault path (d_from_copy marks them for the stats). *)
      insert_entry t
        {
          va_start = base + p.cpc_rel;
          va_end = base + p.cpc_rel + p.cpc_span;
          protection = Prot.rw;
          max_protection = Prot.all;
          inheritance = Inherit_copy;
          backing =
            Direct
              { d_obj = p.cpc_obj; d_offset = p.cpc_offset; needs_copy = true; d_from_copy = true };
        })
    copy.vc_pieces;
  Kctx.charge t.kctx
    (float_of_int (List.length copy.vc_pieces) *. t.kctx.Kctx.params.Machine.map_op_us);
  base

let copy_discard copy =
  if not copy.vc_consumed then begin
    copy.vc_consumed <- true;
    List.iter (fun p -> Vm_object.deallocate copy.vc_kctx p.cpc_obj) copy.vc_pieces
  end

let copy_size copy = copy.vc_size

let copy_region ~src ~src_addr ~size ~dst ?dst_addr () =
  let ps = page_size src in
  if page_size dst <> ps then invalid_arg "Vm_map.copy_region: page size mismatch";
  let lo = src_addr land lnot (ps - 1) in
  let hi = (src_addr + size + ps - 1) land lnot (ps - 1) in
  let es = entries_covering src ~lo ~hi in
  let total = hi - lo in
  let base, _ = pick_address dst ?addr:dst_addr ~size:total ~anywhere:true () in
  List.iter
    (fun e ->
      copy_pieces src e ~lo:e.va_start ~hi:e.va_end (fun ~rel ~span ~obj ~offset ->
          let at = base + (e.va_start - lo) + rel in
          insert_entry dst
            {
              va_start = at;
              va_end = at + span;
              protection = Prot.rw;
              max_protection = Prot.all;
              inheritance = Inherit_copy;
              backing =
                Direct { d_obj = obj; d_offset = offset; needs_copy = true; d_from_copy = false };
            }))
    es;
  base
