(** Wire format of the external memory management protocol
    (Tables 3-4/3-5/3-6), hand-written in the style of the Mach
    Interface Generator.

    Every call is an asynchronous message. Kernel → manager calls are
    sent to the memory object port (except [pager_create], which goes to
    the default pager's public port); manager → kernel calls are sent to
    the pager request port handed out by [pager_init]. Page contents
    travel out-of-line with [Map_transfer] — the duality applied to the
    paging path itself. *)

module Message = Mach_ipc.Message

type kernel_to_manager =
  | Init of { memory_object : Message.port; request : Message.port; name : Message.port }
      (** [pager_init] *)
  | Data_request of {
      memory_object : Message.port;
      request : Message.port;
      offset : int;
      length : int;
      desired_access : Mach_hw.Prot.t;
    }
  | Data_write of { memory_object : Message.port; offset : int; data : bytes; write_id : int }
      (** [data] may span a run of adjacent pages — the kernel coalesces
          per-object runs of dirty pages into one write, so managers
          must split multi-page payloads at page boundaries. [write_id]
          identifies the kernel's holding object so the manager's
          release (its [vm_deallocate] of the transferred region,
          §6.2.2) can be modelled with {!Release_write}; one release
          covers the whole run. *)
  | Data_unlock of {
      memory_object : Message.port;
      request : Message.port;
      offset : int;
      length : int;
      desired_access : Mach_hw.Prot.t;
    }
  | Create of {
      new_memory_object : Message.port;
      request : Message.port;
      name : Message.port;
      size : int;
    }  (** [pager_create], sent to the default pager *)
  | Lock_completed of { memory_object : Message.port; offset : int; length : int }
      (** confirmation that a [pager_flush_request] has been carried out
          — §4.2's "once all readers have been invalidated" needs the
          manager to learn this; real Mach later added
          [memory_object_lock_completed] for the same reason *)

type manager_to_kernel =
  | Data_provided of { offset : int; data : bytes; lock_value : Mach_hw.Prot.t }
  | Data_lock of { offset : int; length : int; lock_value : Mach_hw.Prot.t }
  | Flush_request of { offset : int; length : int }
  | Clean_request of { offset : int; length : int }
  | Cache of { may_cache : bool }
  | Data_unavailable of { offset : int; size : int }
  | Release_write of { write_id : int }
      (** models the manager [vm_deallocate]-ing the data of a
          [pager_data_write]; not a distinct call in the paper *)

(** {2 Encoding} *)

val encode_k2m : reply:Message.port option -> kernel_to_manager -> dest:Message.port -> Message.t
val encode_m2k : manager_to_kernel -> request:Message.port -> Message.t

(** {2 Decoding} *)

exception Malformed of string

val decode_k2m : Message.t -> kernel_to_manager
(** Raises {!Malformed} on unknown ids or bad payloads. *)

val decode_m2k : Message.t -> manager_to_kernel

val is_pager_msg : Message.t -> bool
(** Whether the message id belongs to this protocol. *)
