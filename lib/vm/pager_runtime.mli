(** The data-manager runtime: one protocol framework under every pager.

    Owns what every manager used to duplicate — the memory-object
    registry, multi-page [data_request] / run-shaped [data_write]
    splitting with coalesced replies, unlock resolution, release
    accounting, port-death bookkeeping, and a uniform {!Stats} block.
    A manager supplies a {!policy} and becomes a thin policy module.

    Transport-agnostic: [send] is injected, so the same engine serves
    user-level managers (through [Memory_object_server], see
    [Mach.Pager_runtime.serve]) and the in-kernel default pager. *)

module Message = Mach_ipc.Message
module Prot = Mach_hw.Prot

module Stats : sig
  type t = {
    mutable s_requests : int;
    mutable s_pages_served : int;
    mutable s_unavailable : int;
    mutable s_writes : int;
    mutable s_pages_written : int;
    mutable s_unlocks : int;
    mutable s_dropped_replies : int;
    mutable s_port_deaths : int;
  }

  val create : unit -> t
  val to_list : t -> (string * int) list

  val reset : t -> unit
  (** Zero every counter (the registry's shared reset idiom). *)
end

type 'o obj = {
  o_port : Message.port;
  o_id : int;
  mutable o_requests : Message.port list;
  mutable o_in_flight : int;
  o_data : 'o;
}

type page_reply = Data of bytes | Unavailable | Defer
type unlock_reply = Grant | Relock of Prot.t | Defer_unlock

type 'o t

and 'o policy = {
  p_read :
    'o t -> 'o obj -> request:Message.port -> page:int -> desired_access:Prot.t -> page_reply;
  p_write : 'o t -> 'o obj -> page:int -> data:bytes -> unit;
  p_prepare_write : 'o t -> 'o obj -> offset:int -> data:bytes -> unit;
  p_unlock :
    'o t -> 'o obj -> request:Message.port -> page:int -> desired_access:Prot.t -> unlock_reply;
  p_reshape : 'o t -> 'o obj -> first:int -> npages:int -> int * int;
  p_init : 'o t -> 'o obj -> request:Message.port -> unit;
  p_lock_completed :
    'o t -> 'o obj -> request:Message.port option -> offset:int -> length:int -> unit;
  p_death : 'o t -> 'o obj -> Message.port -> unit;
  p_may_cache : bool option;
}

val default_policy : 'o policy

val create :
  name:string ->
  page_size:int ->
  send:(Message.t -> (unit, unit) result) ->
  'o policy ->
  'o t

val name : 'o t -> string
val page_size : 'o t -> int
val stats : 'o t -> Stats.t
val set_policy : 'o t -> 'o policy -> unit

(** {2 Registry} *)

val register : 'o t -> memory_object:Message.port -> 'o -> 'o obj
val unregister : 'o t -> 'o obj -> unit
val find : 'o t -> Message.port -> 'o obj option
val find_data : 'o t -> Message.port -> 'o option
val objects : 'o t -> int
val iter_objects : 'o t -> ('o obj -> unit) -> unit
val requests : 'o obj -> Message.port list
val add_request : 'o obj -> Message.port -> unit

(** Count one failed manager→kernel send (used by transports that send
    outside the runtime's own helpers). *)
val note_dropped_reply : 'o t -> unit

(** {2 Manager→kernel calls (Table 3-6), with drop accounting} *)

val data_provided :
  'o t -> request:Message.port -> offset:int -> data:bytes -> lock_value:Prot.t -> unit

val data_unavailable : 'o t -> request:Message.port -> offset:int -> size:int -> unit
val data_lock : 'o t -> request:Message.port -> offset:int -> length:int -> lock_value:Prot.t -> unit
val flush_request : 'o t -> request:Message.port -> offset:int -> length:int -> unit
val clean_request : 'o t -> request:Message.port -> offset:int -> length:int -> unit
val cache : 'o t -> request:Message.port -> may_cache:bool -> unit
val release_write : 'o t -> request:Message.port -> write_id:int -> unit

(** {2 Kernel→manager dispatch (Table 3-5)} *)

val handle_init : 'o t -> memory_object:Message.port -> request:Message.port -> unit

val handle_data_request :
  'o t ->
  memory_object:Message.port ->
  request:Message.port ->
  offset:int ->
  length:int ->
  desired_access:Prot.t ->
  unit

val handle_data_write :
  'o t -> memory_object:Message.port -> offset:int -> data:bytes -> release:(unit -> unit) -> unit

val handle_data_unlock :
  'o t ->
  memory_object:Message.port ->
  request:Message.port ->
  offset:int ->
  length:int ->
  desired_access:Prot.t ->
  unit

val handle_lock_completed :
  'o t -> memory_object:Message.port -> request:Message.port option -> offset:int -> length:int -> unit

val handle_port_death : 'o t -> Message.port -> unit

(** {2 Block-boundary splitting} *)

module Blocks : sig
  val iter_spans :
    block_size:int ->
    offset:int ->
    len:int ->
    (index:int -> block_off:int -> buf_off:int -> len:int -> unit) ->
    unit

  val read_range :
    block_size:int -> read:(index:int -> bytes option) -> offset:int -> len:int -> bytes

  val write_range :
    block_size:int ->
    read:(index:int -> bytes option) ->
    write:(index:int -> bytes -> unit) ->
    offset:int ->
    data:bytes ->
    unit
end
