open Vm_types
module Dlist = Mach_util.Dlist

type t = { active : page Dlist.t; inactive : page Dlist.t; laundry : page Dlist.t }

let create () = { active = Dlist.create (); inactive = Dlist.create (); laundry = Dlist.create () }
let active_count t = Dlist.length t.active
let inactive_count t = Dlist.length t.inactive
let laundry_count t = Dlist.length t.laundry

let node_of page =
  match page.q_node with
  | Some n -> n
  | None ->
    let n = Dlist.node page in
    page.q_node <- Some n;
    n

let remove t page =
  (match page.q_state with
  | Q_none -> ()
  | Q_active -> Dlist.remove t.active (node_of page)
  | Q_inactive -> Dlist.remove t.inactive (node_of page)
  | Q_laundry -> Dlist.remove t.laundry (node_of page));
  page.q_state <- Q_none

let activate t page =
  remove t page;
  Dlist.push_back t.active (node_of page);
  page.q_state <- Q_active

let deactivate t page =
  remove t page;
  Dlist.push_back t.inactive (node_of page);
  page.q_state <- Q_inactive

let launder t page =
  remove t page;
  Dlist.push_back t.laundry (node_of page);
  page.q_state <- Q_laundry

let oldest_active t = Option.map Dlist.value (Dlist.peek_front t.active)
let oldest_inactive t = Option.map Dlist.value (Dlist.peek_front t.inactive)

let iter_inactive t f = List.iter f (Dlist.to_list t.inactive)
let iter_laundry t f = List.iter f (Dlist.to_list t.laundry)

(* Invariant oracle for the property tests: every page on a queue must
   carry the matching [q_state], every page can be on at most one queue,
   and the counts must agree with the membership walk. *)
let check_invariants t =
  let seen = ref [] in
  let check_queue q want name =
    let n = ref 0 in
    let err = ref None in
    Dlist.iter
      (fun p ->
        incr n;
        if List.memq p !seen then
          err := Some (Printf.sprintf "page on two queues (second: %s)" name)
        else seen := p :: !seen;
        if p.q_state <> want then
          err := Some (Printf.sprintf "page on %s queue has mismatched q_state" name))
      q;
    match !err with
    | Some e -> Error e
    | None ->
      if !n <> Dlist.length q then Error (Printf.sprintf "%s queue length mismatch" name)
      else Ok ()
  in
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  check_queue t.active Q_active "active" >>= fun () ->
  check_queue t.inactive Q_inactive "inactive" >>= fun () ->
  check_queue t.laundry Q_laundry "laundry" >>= fun () -> Ok ()
