(** Unified metrics registry: every subsystem's counters behind one
    snapshot/reset/serialize surface.

    Hot paths keep their cost profile: a subsystem's existing mutable
    stats record is itself the set of pre-registered O(1) handles — the
    registry holds a read closure over it ({!register_source}) and is
    never on the increment path. Metrics with no record to live in use
    a direct {!counter} (one mutable int), a sampled {!gauge} (a
    closure read at snapshot time), or a {!histogram} (a {!Stats.t}
    reduced to count/mean/p50/p95/max at snapshot time).

    Keys are ["subsystem.name"]; a snapshot is flat and sorted, so one
    JSON serializer covers the syscall surface, the bench harness and
    the CLI. Registering two sources under one subsystem (e.g. several
    pagers named alike) sums their values. *)

type registry
type snapshot = (string * float) list

type counter
(** A pre-registered monotone counter handle: one mutable int. *)

type histogram
(** A pre-registered sample accumulator; snapshots expand it into
    [.count], [.mean], [.p50], [.p95] and [.max] keys (the latter four
    only when non-empty). *)

val create : unit -> registry

val counter : registry -> subsystem:string -> string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : registry -> subsystem:string -> string -> (unit -> int) -> unit
(** A sampled value (queue depth, free frames): the closure runs at
    snapshot time, never on a hot path. *)

val histogram : registry -> subsystem:string -> string -> histogram
val observe : histogram -> float -> unit
val histogram_samples : histogram -> Stats.t
(** The raw accumulator, for percentile queries beyond the snapshot's
    fixed set. *)

val register_source :
  registry -> subsystem:string -> ?reset:(unit -> unit) -> (unit -> (string * int) list) -> unit
(** Adopt an existing stats block: [read] is typically the block's
    [stats_to_list]; [reset] (when given) is invoked by {!reset} so
    every subsystem shares one zeroing idiom. *)

val snapshot : registry -> snapshot
(** Flat, sorted; duplicate keys summed. *)

val reset : registry -> unit
(** Zero counters and histograms and run every source's [reset]
    closure. Gauges are live values and are left alone. *)

val delta : before:snapshot -> after:snapshot -> snapshot
(** Pointwise [after - before] over [after]'s keys (missing [before]
    keys count as 0). Meaningful for monotone counters; histogram
    percentile keys subtract numerically like everything else. *)

val merge : snapshot list -> snapshot
(** Pointwise sum over the union of keys (e.g. the hosts of a
    cluster). *)

val find : snapshot -> string -> float option
val get : ?default:float -> snapshot -> string -> float
val to_list : snapshot -> (string * float) list

val to_json : ?indent:int -> snapshot -> string
(** One ["key": number] pair per line, flat — the same shape the bench
    harness's gate scripts line-parse. *)
