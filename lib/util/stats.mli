(** Running statistics and sample collections for experiment reporting. *)

type t
(** A sample accumulator retaining every observation (for percentiles). *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** Mean of the samples; 0 when empty. *)

val stddev : t -> float
(** Population standard deviation; 0 when fewer than two samples. *)

val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]], linear interpolation.
    0 when empty. *)

val median : t -> float

(** Fixed-bucket histogram. *)
module Histogram : sig
  type h

  val create : lo:float -> hi:float -> buckets:int -> h
  val add : h -> float -> unit
  val bucket_count : h -> int -> int
  val render : h -> width:int -> string
  (** ASCII rendering, one line per bucket. *)
end

(* Named monotone counters used to live here ([Counters]); the one
   counters API in the tree is now {!Metrics}. *)
