(* One registry for every subsystem's statistics.

   The design point is that hot paths keep their cost profile: a
   subsystem's existing mutable record of [s_foo <- s_foo + 1] fields
   *is* its set of pre-registered handles — the registry holds only a
   read closure over it ([register_source]) and never sits on the
   increment path. New metrics that have no record to live in get a
   direct [counter] handle (one mutable int), a sampled [gauge] (read
   at snapshot time), or a [histogram] (a [Stats.t] reduced to
   count/mean/percentiles at snapshot time).

   A snapshot is a flat, sorted [(key, value)] list with keys
   "subsystem.name", so one serializer covers every consumer: the
   vm_statistics-style syscall, the bench harness's --json writer, and
   the machsim CLI. Duplicate keys (two pagers registered under one
   name) sum. *)

type counter = { c_key : string; mutable c_value : int }
type histogram = { h_key : string; mutable h_samples : Stats.t }

type entry =
  | Counter of counter
  | Gauge of (unit -> int)
  | Histogram of histogram
  | Source of { read : unit -> (string * int) list; src_reset : (unit -> unit) option }

type registry = { mutable entries : (string * entry) list (* reverse registration order *) }
type snapshot = (string * float) list

let create () = { entries = [] }
let key ~subsystem name = subsystem ^ "." ^ name

let counter r ~subsystem name =
  let c = { c_key = key ~subsystem name; c_value = 0 } in
  r.entries <- (c.c_key, Counter c) :: r.entries;
  c

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let counter_value c = c.c_value

let gauge r ~subsystem name read = r.entries <- (key ~subsystem name, Gauge read) :: r.entries

let histogram r ~subsystem name =
  let h = { h_key = key ~subsystem name; h_samples = Stats.create () } in
  r.entries <- (h.h_key, Histogram h) :: r.entries;
  h

let observe h x = Stats.add h.h_samples x
let histogram_samples h = h.h_samples

let register_source r ~subsystem ?reset read =
  r.entries <- (subsystem, Source { read; src_reset = reset }) :: r.entries

let snapshot r =
  let acc = Hashtbl.create 64 in
  let put k v =
    Hashtbl.replace acc k (v +. Option.value (Hashtbl.find_opt acc k) ~default:0.0)
  in
  List.iter
    (fun (k, entry) ->
      match entry with
      | Counter c -> put k (float_of_int c.c_value)
      | Gauge read -> put k (float_of_int (read ()))
      | Histogram h ->
        let s = h.h_samples in
        put (k ^ ".count") (float_of_int (Stats.count s));
        if Stats.count s > 0 then begin
          put (k ^ ".mean") (Stats.mean s);
          put (k ^ ".p50") (Stats.percentile s 50.0);
          put (k ^ ".p95") (Stats.percentile s 95.0);
          put (k ^ ".max") (Stats.max s)
        end
      | Source { read; _ } ->
        List.iter (fun (name, v) -> put (key ~subsystem:k name) (float_of_int v)) (read ()))
    r.entries;
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset r =
  List.iter
    (fun (_, entry) ->
      match entry with
      | Counter c -> c.c_value <- 0
      | Histogram h -> h.h_samples <- Stats.create ()
      | Source { src_reset = Some f; _ } -> f ()
      | Source { src_reset = None; _ } | Gauge _ -> ())
    r.entries

let find s k = List.assoc_opt k s
let get ?(default = 0.0) s k = Option.value (find s k) ~default
let to_list (s : snapshot) = s

let delta ~before ~after =
  List.map (fun (k, v) -> (k, v -. get before k)) after

let merge snapshots =
  let acc = Hashtbl.create 64 in
  List.iter
    (List.iter (fun (k, v) ->
         Hashtbl.replace acc k (v +. Option.value (Hashtbl.find_opt acc k) ~default:0.0)))
    snapshots;
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Integers print without a fraction so counter values stay readable;
   everything else keeps three decimals (matching the bench harness's
   writer, whose gate scripts parse one "key": number pair per line). *)
let json_number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3f" v

let to_json ?(indent = 2) s =
  let pad = String.make indent ' ' in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{";
  let n = List.length s in
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "\n%s%S: %s%s" pad k (json_number v) (if i = n - 1 then "" else ",")))
    s;
  Buffer.add_string buf "\n}";
  Buffer.contents buf
