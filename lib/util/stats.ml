type t = {
  mutable samples : float list;
  mutable sorted : float array option; (* cache, invalidated on add *)
  mutable n : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable mn : float;
  mutable mx : float;
}

let create () =
  { samples = []; sorted = None; n = 0; sum = 0.0; sum_sq = 0.0; mn = infinity; mx = neg_infinity }

let add t x =
  t.samples <- x :: t.samples;
  t.sorted <- None;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sum_sq <- t.sum_sq +. (x *. x);
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.0
  else
    let m = mean t in
    let v = (t.sum_sq /. float_of_int t.n) -. (m *. m) in
    if v <= 0.0 then 0.0 else sqrt v

let min t = if t.n = 0 then 0.0 else t.mn
let max t = if t.n = 0 then 0.0 else t.mx

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.of_list t.samples in
    Array.sort compare a;
    t.sorted <- Some a;
    a

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let a = sorted t in
    let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
    let rank = p /. 100.0 *. float_of_int (t.n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then a.(lo)
    else
      let w = rank -. float_of_int lo in
      (a.(lo) *. (1.0 -. w)) +. (a.(hi) *. w)
  end

let median t = percentile t 50.0

module Histogram = struct
  type h = { lo : float; hi : float; counts : int array }

  let create ~lo ~hi ~buckets =
    assert (buckets > 0 && hi > lo);
    { lo; hi; counts = Array.make buckets 0 }

  let add h x =
    let buckets = Array.length h.counts in
    let idx =
      if x <= h.lo then 0
      else if x >= h.hi then buckets - 1
      else int_of_float ((x -. h.lo) /. (h.hi -. h.lo) *. float_of_int buckets)
    in
    let idx = Stdlib.min (buckets - 1) (Stdlib.max 0 idx) in
    h.counts.(idx) <- h.counts.(idx) + 1

  let bucket_count h i = h.counts.(i)

  let render h ~width =
    let buckets = Array.length h.counts in
    let peak = Array.fold_left Stdlib.max 1 h.counts in
    let buf = Buffer.create 256 in
    for i = 0 to buckets - 1 do
      let bucket_lo = h.lo +. ((h.hi -. h.lo) *. float_of_int i /. float_of_int buckets) in
      let bar = h.counts.(i) * width / peak in
      Buffer.add_string buf (Printf.sprintf "%12.2f | %s %d\n" bucket_lo (String.make bar '#') h.counts.(i))
    done;
    Buffer.contents buf
end
