type fault = Missing | Protection

type t = { mem : Phys_mem.t; table : (int, Phys_mem.frame * Prot.t) Hashtbl.t }

let create mem = { mem; table = Hashtbl.create 256 }
let phys_mem t = t.mem
let enter t ~vpn ~frame ~prot = Hashtbl.replace t.table vpn (frame, prot)

let enter_batch t entries =
  List.iter (fun (vpn, frame, prot) -> Hashtbl.replace t.table vpn (frame, prot)) entries
let remove t ~vpn = Hashtbl.remove t.table vpn

let remove_range t ~lo ~hi =
  (* Iterate whichever side is smaller: the range or the table. *)
  if hi - lo + 1 <= Hashtbl.length t.table then
    for vpn = lo to hi do
      Hashtbl.remove t.table vpn
    done
  else begin
    let doomed =
      Hashtbl.fold (fun vpn _ acc -> if vpn >= lo && vpn <= hi then vpn :: acc else acc) t.table []
    in
    List.iter (fun vpn -> Hashtbl.remove t.table vpn) doomed
  end

let protect_range t ~lo ~hi ~prot =
  if hi - lo + 1 <= Hashtbl.length t.table then
    for vpn = lo to hi do
      match Hashtbl.find_opt t.table vpn with
      | Some (frame, _) -> Hashtbl.replace t.table vpn (frame, prot)
      | None -> ()
    done
  else begin
    let hits =
      Hashtbl.fold
        (fun vpn (frame, _) acc -> if vpn >= lo && vpn <= hi then (vpn, frame) :: acc else acc)
        t.table []
    in
    List.iter (fun (vpn, frame) -> Hashtbl.replace t.table vpn (frame, prot)) hits
  end

let protect t ~vpn ~prot =
  match Hashtbl.find_opt t.table vpn with
  | Some (frame, _) -> Hashtbl.replace t.table vpn (frame, prot)
  | None -> ()

let lookup t ~vpn = Hashtbl.find_opt t.table vpn

let access t ~vpn ~write =
  match Hashtbl.find_opt t.table vpn with
  | None -> Error Missing
  | Some (frame, prot) ->
    let allowed = if write then Prot.can_write prot else Prot.can_read prot in
    if not allowed then Error Protection
    else begin
      Phys_mem.set_referenced t.mem frame true;
      if write then Phys_mem.set_modified t.mem frame true;
      Ok frame
    end

let resident_count t = Hashtbl.length t.table

let frames_mapping t frame =
  Hashtbl.fold (fun vpn (f, _) acc -> if f = frame then vpn :: acc else acc) t.table []
  |> List.sort compare
