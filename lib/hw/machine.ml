type mp_class = Uma | Numa | Norma

let class_to_string = function Uma -> "UMA" | Numa -> "NUMA" | Norma -> "NORMA"

type params = {
  model : string;
  mp_class : mp_class;
  cpus : int;
  local_access_us : float;
  remote_access_us : float option;
  page_copy_us : float;
  map_op_us : float;
  fault_base_us : float;
  msg_overhead_us : float;
  context_switch_us : float;
  quantum_us : float;
  net_latency_us : float;
  net_us_per_byte : float;
  pageout_backoff_us : float;
}

(* Common 1987-era software constants: a local Mach message exchange cost
   on the order of 100 us; a page copy a few hundred; a pmap update tens. *)
let base =
  {
    model = "generic";
    mp_class = Uma;
    cpus = 1;
    local_access_us = 0.5;
    remote_access_us = Some 0.8;
    page_copy_us = 400.0;
    map_op_us = 25.0;
    fault_base_us = 150.0;
    msg_overhead_us = 115.0;
    context_switch_us = 80.0;
    quantum_us = 10_000.0;
    net_latency_us = 5000.0;
    net_us_per_byte = 0.8;
    pageout_backoff_us = 50.0;
  }

let vax_8800 = { base with model = "VAX 8800"; cpus = 2; local_access_us = 0.4; remote_access_us = Some 0.6 }

let multimax =
  { base with model = "Encore MultiMax"; cpus = 16; local_access_us = 0.5; remote_access_us = Some 0.8 }

let butterfly =
  {
    base with
    model = "BBN Butterfly";
    mp_class = Numa;
    cpus = 64;
    local_access_us = 0.5;
    remote_access_us = Some 5.0;
    net_latency_us = 1000.0;
  }

let hypercube =
  {
    base with
    model = "Intel HyperCube";
    mp_class = Norma;
    cpus = 32;
    local_access_us = 0.5;
    remote_access_us = None;
    net_latency_us = 300.0;
    net_us_per_byte = 0.8;
  }

let uniprocessor = { base with model = "VAX 11/780"; cpus = 1 }

let custom ?model ?cpus ?local_access_us ?remote_access_us ?page_copy_us ?map_op_us ?fault_base_us
    ?msg_overhead_us ?context_switch_us ?quantum_us ?net_latency_us ?net_us_per_byte
    ?pageout_backoff_us mp_class =
  let start =
    match mp_class with Uma -> multimax | Numa -> butterfly | Norma -> hypercube
  in
  let get dflt = function Some v -> v | None -> dflt in
  {
    model = get start.model model;
    mp_class;
    cpus = get start.cpus cpus;
    local_access_us = get start.local_access_us local_access_us;
    remote_access_us = get start.remote_access_us remote_access_us;
    page_copy_us = get start.page_copy_us page_copy_us;
    map_op_us = get start.map_op_us map_op_us;
    fault_base_us = get start.fault_base_us fault_base_us;
    msg_overhead_us = get start.msg_overhead_us msg_overhead_us;
    context_switch_us = get start.context_switch_us context_switch_us;
    quantum_us = get start.quantum_us quantum_us;
    net_latency_us = get start.net_latency_us net_latency_us;
    net_us_per_byte = get start.net_us_per_byte net_us_per_byte;
    pageout_backoff_us = get start.pageout_backoff_us pageout_backoff_us;
  }

let access_us p ~remote ~words =
  if not remote then float_of_int words *. p.local_access_us
  else
    match p.remote_access_us with
    | Some c -> float_of_int words *. c
    | None -> invalid_arg "Machine.access_us: NORMA machines have no remote memory access"
