(** Machine models: the §7 multiprocessor taxonomy.

    A [params] record captures the latency constants of a machine class.
    The presets are calibrated to the paper's numbers: remote access on a
    MultiMax-class UMA averages "considerably less than one microsecond",
    a Butterfly-class NUMA pays roughly 10x its local access time
    (~5 µs), and a HyperCube-class NORMA communicates in hundreds of
    microseconds with no remote memory access at all. *)

type mp_class = Uma | Numa | Norma

val class_to_string : mp_class -> string

type params = {
  model : string;  (** display name, e.g. ["Encore MultiMax"] *)
  mp_class : mp_class;
  cpus : int;
  local_access_us : float;  (** one local memory word access *)
  remote_access_us : float option;
      (** one remote word access; [None] for NORMA (no remote access) *)
  page_copy_us : float;  (** copying one page, CPU + bus *)
  map_op_us : float;  (** one pmap enter/remove/protect operation *)
  fault_base_us : float;  (** trap + fault-handler entry/exit *)
  msg_overhead_us : float;  (** fixed local message send+receive cost *)
  context_switch_us : float;
  quantum_us : float;
      (** scheduler timeslice: a compute burst yields its processor at
          this granularity when the run queue is contended *)
  net_latency_us : float;  (** one-way inter-node message latency *)
  net_us_per_byte : float;  (** inter-node transfer cost per byte *)
  pageout_backoff_us : float;
      (** pageout-daemon back-off between reclaim passes while laundry is
          in flight; sweepable by the benches *)
}

val vax_8800 : params
(** 2-CPU UMA mainframe. *)

val multimax : params
(** 16-CPU UMA (Encore MultiMax). *)

val butterfly : params
(** 64-CPU NUMA (BBN Butterfly): remote ≈ 10x local. *)

val hypercube : params
(** 32-node NORMA (Intel HyperCube): remote access only by message,
    hundreds of microseconds. *)

val uniprocessor : params
(** VAX 11/780-class machine for single-host experiments. *)

val custom :
  ?model:string ->
  ?cpus:int ->
  ?local_access_us:float ->
  ?remote_access_us:float option ->
  ?page_copy_us:float ->
  ?map_op_us:float ->
  ?fault_base_us:float ->
  ?msg_overhead_us:float ->
  ?context_switch_us:float ->
  ?quantum_us:float ->
  ?net_latency_us:float ->
  ?net_us_per_byte:float ->
  ?pageout_backoff_us:float ->
  mp_class ->
  params
(** A parameterised machine starting from class-appropriate defaults. *)

val access_us : params -> remote:bool -> words:int -> float
(** Simulated time to touch [words] memory words. For a NORMA machine
    with [remote = true] this raises [Invalid_argument]: there is no
    remote memory access; use the network. *)
