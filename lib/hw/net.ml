module Engine = Mach_sim.Engine
module Chaos = Mach_sim.Chaos

type t = {
  engine : Engine.t;
  latency_us : float;
  us_per_byte : float;
  mutable messages : int;
  mutable bytes : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable retransmits : int;
  mutable chaos : Chaos.t option;
  channels : (int * int, float ref) Hashtbl.t;
      (* per-(src,dst) link serialization: transmissions queue FIFO, so a
         small message cannot overtake a large one sent earlier (the
         netmsg server serializes per connection) *)
}

let create engine ?(latency_us = 300.0) ?(us_per_byte = 0.8) () =
  {
    engine;
    latency_us;
    us_per_byte;
    messages = 0;
    bytes = 0;
    dropped = 0;
    duplicated = 0;
    retransmits = 0;
    chaos = None;
    channels = Hashtbl.create 16;
  }

let set_chaos t c = t.chaos <- c
let chaos t = t.chaos

let channel t ~src ~dst =
  match Hashtbl.find_opt t.channels (src, dst) with
  | Some r -> r
  | None ->
    let r = ref 0.0 in
    Hashtbl.replace t.channels (src, dst) r;
    r

(* Absolute arrival time for a message sent now: transmission occupies
   the channel serially, propagation latency pipelines. *)
let arrival_time t ~src ~dst ~bytes =
  let now = Engine.now t.engine in
  if src = dst then now
  else begin
    let busy = channel t ~src ~dst in
    let xmit_done = Float.max now !busy +. (float_of_int bytes *. t.us_per_byte) in
    busy := xmit_done;
    xmit_done +. t.latency_us
  end

let latency_us t = t.latency_us
let us_per_byte t = t.us_per_byte

(* Queueing delay a message sent now would see before its own
   transmission starts: how far ahead of the clock the link's
   serializer already is. *)
let backlog_us t ~src ~dst =
  if src = dst then 0.0
  else
    match Hashtbl.find_opt t.channels (src, dst) with
    | None -> 0.0
    | Some busy -> Float.max 0.0 (!busy -. Engine.now t.engine)

let transit_us t ~src ~dst ~bytes =
  if src = dst then 0.0 else t.latency_us +. (float_of_int bytes *. t.us_per_byte)

let count t ~src ~dst ~bytes =
  if src <> dst then begin
    t.messages <- t.messages + 1;
    t.bytes <- t.bytes + bytes
  end

let deliver t ~src ~dst ~bytes callback =
  count t ~src ~dst ~bytes;
  if src = dst then callback ()
  else begin
    (* The wire is occupied whether or not the message survives: compute
       the arrival first so drops still serialize behind earlier traffic. *)
    let at = arrival_time t ~src ~dst ~bytes in
    match t.chaos with
    | None -> Engine.schedule t.engine ~at callback
    | Some c -> (
      match Chaos.judge c ~src ~dst with
      | Chaos.Dropped _ -> t.dropped <- t.dropped + 1
      | Chaos.Deliver { copies; extra_delay_us } ->
        Engine.schedule t.engine ~at:(at +. extra_delay_us) callback;
        (* A duplicate takes another trip down the wire: it lands one
           full transit later than the original. *)
        for _ = 2 to copies do
          t.duplicated <- t.duplicated + 1;
          Engine.schedule t.engine
            ~at:(at +. extra_delay_us +. transit_us t ~src ~dst ~bytes)
            callback
        done)
  end

let transit t ~src ~dst ~bytes =
  count t ~src ~dst ~bytes;
  if src <> dst then begin
    let at = arrival_time t ~src ~dst ~bytes in
    let delay = at -. Engine.now t.engine in
    if delay > 0.0 then Engine.sleep delay
  end

let note_retransmit t = t.retransmits <- t.retransmits + 1
let messages t = t.messages
let bytes_carried t = t.bytes
let dropped t = t.dropped
let duplicated t = t.duplicated
let retransmits t = t.retransmits

let stats_to_list t =
  [
    ("messages", t.messages);
    ("bytes_carried", t.bytes);
    ("dropped", t.dropped);
    ("duplicated", t.duplicated);
    ("retransmits", t.retransmits);
  ]

let reset_stats t =
  t.messages <- 0;
  t.bytes <- 0;
  t.dropped <- 0;
  t.duplicated <- 0;
  t.retransmits <- 0
