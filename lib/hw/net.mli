(** Inter-host network fabric.

    Models the NORMA interconnect: point-to-point delivery with a fixed
    one-way latency plus a per-byte transfer cost. Intra-host "delivery"
    (src = dst) is free — the duality means local transfers go through
    memory instead.

    An attached {!Mach_sim.Chaos} oracle can drop, duplicate, or delay
    any inter-host message; intra-host delivery is never subject to
    chaos. *)

type t

val create : Mach_sim.Engine.t -> ?latency_us:float -> ?us_per_byte:float -> unit -> t

val set_chaos : t -> Mach_sim.Chaos.t option -> unit
val chaos : t -> Mach_sim.Chaos.t option

val latency_us : t -> float
val us_per_byte : t -> float

val transit_us : t -> src:int -> dst:int -> bytes:int -> float
(** The simulated transit time for a payload of [bytes] between the two
    hosts; 0 when [src = dst]. *)

val backlog_us : t -> src:int -> dst:int -> float
(** Current queueing delay on the directed link: how long a message
    sent now waits behind earlier traffic before its own transmission
    starts. 0 when the link is idle or [src = dst]. The reliable
    channel layer folds this into its retransmission timeout so a
    congested (but healthy) link is not mistaken for a lossy one. *)

val deliver : t -> src:int -> dst:int -> bytes:int -> (unit -> unit) -> unit
(** Schedule [callback] after the transit time; the caller does not
    block (the wire is asynchronous). The callback must not block.
    Under chaos the callback may fire twice (duplicate) or never
    (drop) — a reliability layer above must cope. The wire stays
    occupied for the transmission time even when the message is
    dropped. *)

val transit : t -> src:int -> dst:int -> bytes:int -> unit
(** Blocking form: the calling thread sleeps for the transit time.
    Not subject to chaos. *)

(** {2 Statistics} *)

val note_retransmit : t -> unit
(** Credited by the reliable channel layer when it re-sends a packet. *)

val messages : t -> int
val bytes_carried : t -> int
val dropped : t -> int
val duplicated : t -> int
val retransmits : t -> int
val stats_to_list : t -> (string * int) list
val reset_stats : t -> unit
