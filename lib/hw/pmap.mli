(** The machine-dependent physical map module (the paper's §5.5
    "hardware validation" step).

    One [Pmap.t] per task address space. It holds the virtual-page →
    frame translations currently validated in "hardware"; all simulated
    memory accesses go through {!access}, which sets the frame's
    reference/modify bits exactly as an MMU would. The machine-independent
    VM layer may throw any translation away at any time — the pmap is a
    cache, never the truth. *)

type t

type fault = Missing | Protection
(** [Missing]: no valid translation. [Protection]: a translation exists
    but forbids the attempted access. *)

val create : Phys_mem.t -> t
val phys_mem : t -> Phys_mem.t

val enter : t -> vpn:int -> frame:Phys_mem.frame -> prot:Prot.t -> unit
(** Install (or replace) the translation for virtual page [vpn]. *)

val enter_batch : t -> (int * Phys_mem.frame * Prot.t) list -> unit
(** Install several [(vpn, frame, prot)] translations in one machine
    operation — the burst-fault path amortises per-entry validation
    cost across the batch. *)

val remove : t -> vpn:int -> unit
(** Invalidate a translation; harmless if absent. *)

val remove_range : t -> lo:int -> hi:int -> unit
(** Invalidate [lo..hi] (inclusive virtual page numbers). *)

val protect : t -> vpn:int -> prot:Prot.t -> unit
(** Reduce/alter the protection of an existing translation; harmless if
    absent. *)

val protect_range : t -> lo:int -> hi:int -> prot:Prot.t -> unit
(** Alter the protection of every existing translation in [lo..hi]
    (inclusive virtual page numbers) in one machine operation — the
    copy engine's fork/copyin write-protect sweep amortises per-entry
    validation cost across the run. Pages without a translation are
    skipped. *)

val lookup : t -> vpn:int -> (Phys_mem.frame * Prot.t) option

val access : t -> vpn:int -> write:bool -> (Phys_mem.frame, fault) result
(** Simulate a load ([write = false]) or store. On success the frame's
    reference bit is set, and its modify bit too for stores. *)

val resident_count : t -> int
(** Number of valid translations (diagnostic). *)

val frames_mapping : t -> Phys_mem.frame -> int list
(** Virtual pages of this pmap currently mapped to the given frame. *)
